(* Optimizer tests: rewrite shapes (pushdown, fusion, narrowing), cost
   improvement on the paper-motivated queries, and the semantic-
   preservation property over random expressions. *)

open Mxra_relational
open Mxra_core
open Mxra_engine
open Mxra_optimizer
module W = Mxra_workload

let s_kv = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]
let tup a b = Tuple.of_list [ Value.Int a; Value.Int b ]

let db =
  Database.of_relations
    [
      ("l", Relation.of_counted_list s_kv
              (List.init 20 (fun i -> (tup (i mod 5) i, 1 + (i mod 2)))));
      ("r", Relation.of_counted_list s_kv
              (List.init 8 (fun i -> (tup (i mod 5) (100 + i), 1))));
      ("s", Relation.of_counted_list s_kv [ (tup 1 1, 1); (tup 2 2, 1) ]);
    ]

let schemas = Typecheck.env_of_database db
let stats = Stats.env_of_database db

let rec contains_product = function
  | Expr.Product _ -> true
  | Expr.Rel _ | Expr.Const _ -> false
  | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Unique e
  | Expr.GroupBy (_, _, e) ->
      contains_product e
  | Expr.Union (a, b) | Expr.Diff (a, b) | Expr.Intersect (a, b)
  | Expr.Join (_, a, b) ->
      contains_product a || contains_product b

let rec top_selects = function
  | Expr.Select (_, e) -> 1 + top_selects e
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Project _ | Expr.Intersect _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      0

(* --- rewrite shapes ------------------------------------------------------ *)

let test_pushdown_through_join () =
  (* σ_{%1>2 ∧ %3=0}(l ⋈ r): the %1 conjunct must sink into l, the %3
     conjunct into r (as %1 there). *)
  let e =
    Expr.select
      (Pred.And
         (Pred.gt (Scalar.attr 1) (Scalar.int 2),
          Pred.eq (Scalar.attr 3) (Scalar.int 0)))
      (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l") (Expr.rel "r"))
  in
  let optimized = Rules.normalize schemas e in
  Alcotest.(check int) "no selection remains at the top" 0 (top_selects optimized);
  (match optimized with
  | Expr.Join (_, Expr.Select (p_left, Expr.Rel "l"), Expr.Select (p_right, Expr.Rel "r")) ->
      Alcotest.(check bool) "left conjunct" true
        (Pred.equal p_left (Pred.gt (Scalar.attr 1) (Scalar.int 2)));
      Alcotest.(check bool) "right conjunct reindexed" true
        (Pred.equal p_right (Pred.eq (Scalar.attr 1) (Scalar.int 0)))
  | other -> Alcotest.fail ("unexpected shape: " ^ Expr.to_string other));
  Alcotest.(check bool) "semantics preserved" true
    (Equiv.equivalent_on db e optimized)

let test_join_introduction () =
  let e =
    Expr.select (Pred.eq (Scalar.attr 1) (Scalar.attr 3))
      (Expr.product (Expr.rel "l") (Expr.rel "r"))
  in
  let optimized = Rules.normalize schemas e in
  Alcotest.(check bool) "product fused away" false (contains_product optimized);
  Alcotest.(check bool) "semantics preserved" true (Equiv.equivalent_on db e optimized)

let test_pushdown_through_union_and_groupby () =
  let union_case =
    Expr.select (Pred.gt (Scalar.attr 2) (Scalar.int 3))
      (Expr.union (Expr.rel "l") (Expr.rel "r"))
  in
  let optimized = Rules.normalize schemas union_case in
  (match optimized with
  | Expr.Union (Expr.Select _, Expr.Select _) -> ()
  | other -> Alcotest.fail ("union pushdown failed: " ^ Expr.to_string other));
  Alcotest.(check bool) "union semantics" true
    (Equiv.equivalent_on db union_case optimized);
  (* σ on a grouping key commutes below Γ. *)
  let groupby_case =
    Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int 2))
      (Expr.group_by [ 1 ] [ (Aggregate.Sum, 2) ] (Expr.rel "l"))
  in
  let optimized = Rules.normalize schemas groupby_case in
  (match optimized with
  | Expr.GroupBy (_, _, Expr.Select _) -> ()
  | other -> Alcotest.fail ("groupby pushdown failed: " ^ Expr.to_string other));
  Alcotest.(check bool) "groupby semantics" true
    (Equiv.equivalent_on db groupby_case optimized)

let test_selection_not_pushed_past_aggregate_column () =
  (* σ on the aggregate output must stay above Γ. *)
  let e =
    Expr.select (Pred.gt (Scalar.attr 2) (Scalar.int 10))
      (Expr.group_by [ 1 ] [ (Aggregate.Sum, 2) ] (Expr.rel "l"))
  in
  let optimized = Rules.normalize schemas e in
  (match optimized with
  | Expr.Select (_, Expr.GroupBy (_, _, _)) -> ()
  | other -> Alcotest.fail ("should stay above: " ^ Expr.to_string other));
  Alcotest.(check bool) "semantics" true (Equiv.equivalent_on db e optimized)

let test_projection_narrowing () =
  (* Example 3.2's rewrite, produced automatically: a groupby over a join
     should read only the columns it needs. *)
  let e = W.Beer.example_3_2 in
  let beer_schemas = Typecheck.env_of_database W.Beer.tiny in
  let optimized = Rules.normalize beer_schemas e in
  let rec join_has_projection_children = function
    | Expr.Join (_, Expr.Project _, Expr.Project _) -> true
    | Expr.Rel _ | Expr.Const _ -> false
    | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Unique e
    | Expr.GroupBy (_, _, e) ->
        join_has_projection_children e
    | Expr.Union (a, b) | Expr.Diff (a, b) | Expr.Intersect (a, b)
    | Expr.Product (a, b) | Expr.Join (_, a, b) ->
        join_has_projection_children a || join_has_projection_children b
  in
  Alcotest.(check bool) "projections inserted under the join" true
    (join_has_projection_children optimized);
  Alcotest.(check bool) "Example 3.2 semantics preserved" true
    (Equiv.equivalent_on W.Beer.tiny e optimized);
  Alcotest.(check bool) "optimizing is idempotent" true
    (Expr.equal optimized (Rules.normalize beer_schemas optimized))

let test_unique_pushdown () =
  (* δ distributes over × and ⋈ (and collapses with itself); it must not
     cross ⊎ or −. *)
  let e = Expr.unique (Expr.join (Pred.eq (Scalar.attr 1) (Scalar.attr 3)) (Expr.rel "l") (Expr.rel "r")) in
  let optimized = Rules.normalize schemas e in
  (match optimized with
  | Expr.Join (_, Expr.Unique (Expr.Rel "l"), Expr.Unique (Expr.Rel "r")) -> ()
  | other -> Alcotest.fail ("δ not pushed through join: " ^ Expr.to_string other));
  Alcotest.(check bool) "join case semantics" true (Equiv.equivalent_on db e optimized);
  let e = Expr.unique (Expr.unique (Expr.rel "l")) in
  Alcotest.(check bool) "δδ collapses" true
    (Expr.equal (Rules.normalize schemas e) (Expr.unique (Expr.rel "l")));
  let e = Expr.unique (Expr.union (Expr.rel "l") (Expr.rel "r")) in
  (match Rules.normalize schemas e with
  | Expr.Unique (Expr.Union (Expr.Rel "l", Expr.Rel "r")) -> ()
  | other -> Alcotest.fail ("δ wrongly crossed ⊎: " ^ Expr.to_string other));
  let e = Expr.unique (Expr.diff (Expr.rel "l") (Expr.rel "r")) in
  match Rules.normalize schemas e with
  | Expr.Unique (Expr.Diff (_, _)) -> ()
  | other -> Alcotest.fail ("δ wrongly crossed −: " ^ Expr.to_string other)

let test_empty_collapse () =
  let empty = Expr.const (Relation.empty s_kv) in
  let cases =
    [
      Expr.union empty (Expr.rel "l");
      Expr.diff (Expr.rel "l") empty;
      Expr.select Pred.True (Expr.rel "l");
    ]
  in
  List.iter
    (fun e ->
      let optimized = Rules.normalize schemas e in
      Alcotest.(check bool) ("collapses: " ^ Expr.to_string e) true
        (Expr.equal optimized (Expr.rel "l")))
    cases;
  let to_empty =
    [
      Expr.select Pred.False (Expr.rel "l");
      Expr.product (Expr.rel "l") empty;
      Expr.intersect empty (Expr.rel "l");
    ]
  in
  List.iter
    (fun e ->
      match Rules.normalize schemas e with
      | Expr.Const r ->
          Alcotest.(check bool) "empty const" true (Relation.is_empty r)
      | other -> Alcotest.fail ("expected empty const: " ^ Expr.to_string other))
    to_empty

let test_subst_pred () =
  let exprs = [| Scalar.add (Scalar.attr 1) (Scalar.int 1); Scalar.attr 3 |] in
  let p = Pred.eq (Scalar.attr 2) (Scalar.attr 1) in
  let substituted = Rules.subst_pred exprs p in
  Alcotest.(check bool) "substitution" true
    (Pred.equal substituted
       (Pred.eq (Scalar.attr 3) (Scalar.add (Scalar.attr 1) (Scalar.int 1))))

(* --- join ordering -------------------------------------------------------- *)

let test_join_reordering_improves_cost () =
  (* big ⋈ big ⋈ tiny with conditions linking tiny to both: greedy should
     start from the tiny relation.  Left-deep original order is the
     pathological big×big first. *)
  let cond_lr = Pred.eq (Scalar.attr 1) (Scalar.attr 3) in
  let cond_rs = Pred.eq (Scalar.attr 3) (Scalar.attr 5) in
  let e =
    Expr.join cond_rs
      (Expr.join cond_lr (Expr.rel "l") (Expr.rel "r"))
      (Expr.rel "s")
  in
  let reordered = Optimizer.reorder_joins ~stats ~schemas e in
  Alcotest.(check bool) "cost not worse" true
    (Cost.cost ~stats ~schemas reordered <= Cost.cost ~stats ~schemas e +. 1e-6);
  Alcotest.(check bool) "semantics preserved" true
    (Equiv.equivalent_on db e reordered)

let test_full_optimizer_on_worst_case () =
  (* The fully naive form: σ over a pure triple product. *)
  let p =
    Pred.conj
      [
        Pred.eq (Scalar.attr 1) (Scalar.attr 3);
        Pred.eq (Scalar.attr 3) (Scalar.attr 5);
        Pred.gt (Scalar.attr 2) (Scalar.int 2);
      ]
  in
  let e =
    Expr.select p
      (Expr.product (Expr.product (Expr.rel "l") (Expr.rel "r")) (Expr.rel "s"))
  in
  let optimized, report = Optimizer.explain ~stats ~schemas e in
  Alcotest.(check bool) "no product left" false (contains_product optimized);
  Alcotest.(check bool) "estimated cost reduced" true
    (report.Optimizer.output_cost < report.Optimizer.input_cost);
  Alcotest.(check bool) "semantics preserved" true
    (Equiv.equivalent_on db e optimized);
  (* And the real engine agrees both before and after. *)
  Alcotest.(check bool) "engine result unchanged" true
    (Relation.equal (Exec.run_expr db e) (Exec.run_expr db optimized))

(* --- the central property -------------------------------------------------- *)

let optimizer_preserves_semantics =
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:4 in
    let db = scen.W.Gen_expr.db in
    let optimized = Optimizer.optimize_db db scen.W.Gen_expr.expr in
    match Equiv.equivalent_on db scen.W.Gen_expr.expr optimized with
    | ok -> ok
    | exception Aggregate.Undefined _ -> true
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"optimize preserves semantics" ~count:300
       QCheck.small_nat test)

let normalization_preserves_semantics =
  let test seed =
    let scen = W.Gen_expr.scenario ~seed ~depth:5 in
    let db = scen.W.Gen_expr.db in
    let env = Typecheck.env_of_database db in
    let normalized = Rules.normalize env scen.W.Gen_expr.expr in
    match Equiv.equivalent_on db scen.W.Gen_expr.expr normalized with
    | ok -> ok
    | exception Aggregate.Undefined _ -> true
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"normalize preserves semantics" ~count:300
       QCheck.small_nat test)

let suite =
  ( "optimizer",
    [
      Alcotest.test_case "selection pushdown through join" `Quick
        test_pushdown_through_join;
      Alcotest.test_case "join introduction (Thm 3.1)" `Quick test_join_introduction;
      Alcotest.test_case "pushdown through union and groupby" `Quick
        test_pushdown_through_union_and_groupby;
      Alcotest.test_case "aggregate-column selection stays" `Quick
        test_selection_not_pushed_past_aggregate_column;
      Alcotest.test_case "projection narrowing (Ex 3.2)" `Quick
        test_projection_narrowing;
      Alcotest.test_case "δ pushdown" `Quick test_unique_pushdown;
      Alcotest.test_case "empty collapse" `Quick test_empty_collapse;
      Alcotest.test_case "predicate substitution" `Quick test_subst_pred;
      Alcotest.test_case "join reordering" `Quick test_join_reordering_improves_cost;
      Alcotest.test_case "full pipeline on σ(××)" `Quick test_full_optimizer_on_worst_case;
      optimizer_preserves_semantics;
      normalization_preserves_semantics;
    ] )
