(* The generators themselves: determinism from seeds, Zipf shape, synth
   knobs (size, duplicate factor), the beer and retail datasets'
   structural guarantees, and the random-expression generator's
   well-typedness. *)

open Mxra_relational
open Mxra_core
module W = Mxra_workload

let test_rng_determinism () =
  let draw seed =
    let rng = W.Rng.make seed in
    List.init 20 (fun _ -> W.Rng.int rng 1000)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draw 42) (draw 42);
  Alcotest.(check bool) "different seeds differ" true (draw 42 <> draw 43);
  let rng = W.Rng.make 1 in
  Alcotest.(check bool) "int_in bounds" true
    (List.for_all
       (fun _ ->
         let x = W.Rng.int_in rng 5 9 in
         x >= 5 && x <= 9)
       (List.init 200 Fun.id));
  Alcotest.(check bool) "pick from singleton" true
    (W.Rng.pick rng [ "only" ] = "only");
  Alcotest.check_raises "pick from empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (W.Rng.pick rng []))

let test_rng_weighted_and_shuffle () =
  let rng = W.Rng.make 5 in
  (* Weight 0 options are never chosen. *)
  for _ = 1 to 100 do
    Alcotest.(check string) "zero weight excluded" "a"
      (W.Rng.pick_weighted rng [ (1, "a"); (0, "b") ])
  done;
  let xs = List.init 30 Fun.id in
  let shuffled = W.Rng.shuffle rng xs in
  Alcotest.(check (list int)) "shuffle is a permutation" xs
    (List.sort Int.compare shuffled)

let test_zipf_shape () =
  let z = W.Zipf.make ~n:50 ~s:1.2 in
  let rng = W.Rng.make 9 in
  let counts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let k = W.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 1 && k <= 50);
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates rank 10" true
    (counts.(0) > 2 * counts.(9));
  Alcotest.(check bool) "rank 1 dominates rank 49" true
    (counts.(0) > 10 * counts.(48));
  (* s = 0 is uniform-ish: no rank takes more than a few percent. *)
  let u = W.Zipf.make ~n:50 ~s:0.0 in
  let ucounts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let k = W.Zipf.sample u rng in
    ucounts.(k - 1) <- ucounts.(k - 1) + 1
  done;
  Alcotest.(check bool) "uniform when s=0" true
    (Array.for_all (fun c -> c < 800) ucounts);
  Alcotest.check_raises "n <= 0 rejected" (Invalid_argument "Zipf.make: n <= 0")
    (fun () -> ignore (W.Zipf.make ~n:0 ~s:1.0))

let test_synth_knobs () =
  let rng = W.Rng.make 3 in
  let schema = Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DStr) ] in
  let r = W.Synth.relation ~rng ~schema ~size:500 ~dup_factor:10 () in
  Alcotest.(check int) "size honoured" 500 (Relation.cardinal r);
  Alcotest.(check bool) "duplicate factor takes effect" true
    (Mxra_engine.Stats.dup_factor (Mxra_engine.Stats.of_relation r) > 3.0);
  let distinct = W.Synth.relation ~rng ~schema ~size:500 ~dup_factor:1 () in
  (* Value pools are finite, so chance collisions exist even at d=1; the
     knob's effect is relative. *)
  Alcotest.(check bool) "dup 1 far more distinct than dup 10" true
    (Relation.support_size distinct > 2 * Relation.support_size r);
  let l, rr = W.Synth.join_pair ~rng ~left:100 ~right:50 ~key_range:10 in
  Alcotest.(check int) "join pair sizes" 150
    (Relation.cardinal l + Relation.cardinal rr);
  let g = W.Synth.chain_relation ~rng ~nodes:10 ~extra_edges:5 in
  Alcotest.(check int) "chain + extras" 14 (Relation.cardinal g)

let test_beer_dataset () =
  (* The running example's structural guarantees: schemas, the Guineken
     brewery of Example 4.1, and name duplication for Example 3.1. *)
  Alcotest.(check bool) "beer schema" true
    (Schema.compatible
       (Database.schema_of "beer" W.Beer.tiny)
       W.Beer.beer_schema);
  let dutch_names = Eval.eval W.Beer.tiny W.Beer.example_3_1 in
  Alcotest.(check bool) "Example 3.1 really yields duplicates" true
    (Relation.cardinal dutch_names > Relation.support_size dutch_names);
  let rng = W.Rng.make 11 in
  let big = W.Beer.generate ~rng ~breweries:20 ~beers:2_000 () in
  Alcotest.(check int) "generated size" 2000
    (Relation.cardinal (Database.find "beer" big));
  (* Every generated beer references a generated brewery (FK by
     construction), so Example 3.2 runs cleanly at any scale. *)
  let fk =
    Mxra_ext.Constraints.Foreign_key
      { from_relation = "beer"; from_attrs = [ 2 ];
        to_relation = "brewery"; to_attrs = [ 1 ] }
  in
  Alcotest.(check bool) "beer.brewery -> brewery.name holds" true
    (Mxra_ext.Constraints.satisfied big [ fk ])

let test_gen_expr_well_typed () =
  (* Every generated expression type-checks and evaluates against its
     own database — the foundation the property suites stand on. *)
  for seed = 0 to 80 do
    let scen = W.Gen_expr.scenario ~seed ~depth:5 in
    let schema = Typecheck.infer_db scen.W.Gen_expr.db scen.W.Gen_expr.expr in
    let r = Eval.eval scen.W.Gen_expr.db scen.W.Gen_expr.expr in
    Alcotest.(check bool) "schema matches" true
      (Schema.compatible schema (Relation.schema r))
  done

let test_gen_expr_targeted () =
  let rng = W.Rng.make 21 in
  let db = W.Gen_expr.database ~rng () in
  let target = Schema.of_domains [ Domain.DInt; Domain.DStr ] in
  for _ = 1 to 40 do
    let e = W.Gen_expr.expr_of_schema ~rng db ~depth:3 target in
    let inferred = Typecheck.infer_db db e in
    Alcotest.(check bool) "target domains met" true
      (Schema.compatible inferred target)
  done

let suite =
  ( "workload",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng weighted/shuffle" `Quick test_rng_weighted_and_shuffle;
      Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
      Alcotest.test_case "synth knobs" `Quick test_synth_knobs;
      Alcotest.test_case "beer dataset" `Quick test_beer_dataset;
      Alcotest.test_case "generated expressions type-check" `Quick
        test_gen_expr_well_typed;
      Alcotest.test_case "targeted generation" `Quick test_gen_expr_targeted;
    ] )
