examples/beer_analytics.ml: Aggregate Database Eval Expr Format Mxra_core Mxra_engine Mxra_optimizer Mxra_relational Mxra_sql Mxra_workload Pred Relation Scalar Statement Tuple Typecheck Unix Value
