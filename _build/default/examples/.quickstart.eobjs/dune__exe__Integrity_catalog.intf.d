examples/integrity_catalog.mli:
