examples/quickstart.mli:
