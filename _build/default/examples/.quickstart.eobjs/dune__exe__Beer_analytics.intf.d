examples/beer_analytics.mli:
