examples/integrity_catalog.ml: Database Domain Expr Format List Mxra_core Mxra_ext Mxra_relational Pred Relation Scalar Schema Statement Transaction Tuple Typecheck Value
