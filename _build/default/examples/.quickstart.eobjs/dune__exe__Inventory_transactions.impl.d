examples/inventory_transactions.ml: Database Domain Eval Expr Format List Mxra_core Mxra_relational Pred Printf Relation Scalar Schema Statement Transaction Tuple Value
