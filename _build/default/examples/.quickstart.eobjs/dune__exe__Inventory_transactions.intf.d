examples/inventory_transactions.mli:
