examples/retail_analytics.mli:
