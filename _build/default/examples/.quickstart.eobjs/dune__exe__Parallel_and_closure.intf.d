examples/parallel_and_closure.mli:
