examples/quickstart.ml: Aggregate Database Domain Eval Expr Format Mxra_core Mxra_engine Mxra_optimizer Mxra_relational Mxra_xra Relation Schema Tuple Value
