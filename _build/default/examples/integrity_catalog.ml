(* Integrity control — the companion topic the paper delegates to
   Grefen's thesis [11].  A library catalog with key, foreign-key and
   check constraints, enforced at transaction end-brackets: the
   "correctness" letter of ACID in Definition 4.3.

     dune exec examples/integrity_catalog.exe *)

open Mxra_relational
open Mxra_core
module C = Mxra_ext.Constraints

let s_books =
  Schema.of_list
    [ ("isbn", Domain.DStr); ("title", Domain.DStr); ("copies", Domain.DInt) ]

let s_loans = Schema.of_list [ ("isbn", Domain.DStr); ("member", Domain.DStr) ]

let book i t c = Tuple.of_list [ Value.Str i; Value.Str t; Value.Int c ]
let loan i m = Tuple.of_list [ Value.Str i; Value.Str m ]

let library =
  Database.of_relations
    [
      ("books",
       Relation.of_list s_books
         [ book "1846" "Multisets" 3; book "1994" "Bag Algebra" 1 ]);
      ("loans", Relation.of_list s_loans [ loan "1846" "ada" ]);
    ]

let rules =
  [
    (* ISBNs identify books: no duplicate tuples, no key collisions. *)
    C.Key ("books", [ 1 ]);
    (* Loans reference existing books. *)
    C.Foreign_key
      { from_relation = "loans"; from_attrs = [ 1 ];
        to_relation = "books"; to_attrs = [ 1 ] };
    (* Copies are never negative. *)
    C.Check ("books", Pred.ge (Scalar.attr 3) (Scalar.int 0));
  ]

let guarded body = Transaction.make ~abort_if:(C.guard rules) body

let insert name schema rows =
  Statement.Insert (name, Expr.const (Relation.of_list schema rows))

let run db label txn =
  match Transaction.run db txn with
  | Transaction.Committed { state; _ } ->
      Format.printf "  %-34s committed@." label;
      state
  | Transaction.Aborted { state; reason } ->
      Format.printf "  %-34s ABORTED (%s)@." label reason;
      state

let () =
  Format.printf "constraints:@.";
  List.iter (fun c -> Format.printf "  %a@." C.pp c) rules;
  List.iter (C.validate (Typecheck.env_of_database library)) rules;
  Format.printf "initial state satisfies them: %b@.@."
    (C.satisfied library rules);

  let db = library in

  (* A loan of an unknown book violates the foreign key. *)
  let db = run db "loan of unknown ISBN"
      (guarded [ insert "loans" s_loans [ loan "0000" "bob" ] ]) in

  (* Inserting the book first, in the same bracket, is fine: integrity
     is checked at the end bracket, not per statement. *)
  let db = run db "register book + loan (one txn)"
      (guarded
         [
           insert "books" s_books [ book "0000" "Relations" 2 ];
           insert "loans" s_loans [ loan "0000" "bob" ];
         ]) in

  (* A duplicate ISBN violates the key — note the bag subtlety: the
     duplicate is a *tuple-level* duplicate, impossible in a set-based
     model but natural in a multi-set one, and the key constraint is
     what rules it out. *)
  let db = run db "insert duplicate ISBN"
      (guarded [ insert "books" s_books [ book "1994" "Bag Algebra" 1 ] ]) in

  (* An update that would drive copies negative. *)
  let db = run db "decrement 1994 copies below 0"
      (guarded
         [
           Statement.Update
             ("books",
              Expr.select (Pred.eq (Scalar.attr 1) (Scalar.str "1994"))
                (Expr.rel "books"),
              [ Scalar.attr 1; Scalar.attr 2;
                Scalar.sub (Scalar.attr 3) (Scalar.int 2) ]);
         ]) in

  Format.printf "@.final books:@.%a@." Relation.pp_table
    (Database.find "books" db);
  Format.printf "final loans:@.%a@." Relation.pp_table
    (Database.find "loans" db);
  Format.printf "final state still satisfies every constraint: %b@."
    (C.satisfied db rules)
