-- The paper's SQL correspondence, runnable via: bagdb sql --beer analytics.sql
SELECT country, AVG(alcperc) FROM beer, brewery
  WHERE beer.brewery = brewery.name GROUP BY country;
SELECT DISTINCT beer.name FROM beer, brewery
  WHERE beer.brewery = brewery.name AND country = 'NL';
SELECT brewery, CNT(name), MAX(alcperc) FROM beer GROUP BY brewery;
