(* Quickstart: build a multi-set relational database with the public
   API, run the basic algebra on it, and see where bag semantics differs
   from set semantics.

     dune exec examples/quickstart.exe *)

open Mxra_relational
open Mxra_core

let () =
  (* 1. Schemas are ordered attribute lists (Definition 2.2); attributes
     are addressed positionally as %1, %2, ... *)
  let orders =
    Schema.of_list
      [ ("customer", Domain.DStr); ("item", Domain.DStr); ("qty", Domain.DInt) ]
  in

  (* 2. Relations are multisets of tuples: the same tuple can occur more
     than once, and the library tracks multiplicities, not copies. *)
  let row c i q = Tuple.of_list [ Value.Str c; Value.Str i; Value.Int q ] in
  let monday =
    Relation.of_list orders
      [
        row "ada" "stout" 2;
        row "ada" "stout" 2;  (* ada ordered the same thing twice! *)
        row "bob" "lager" 1;
      ]
  in
  let tuesday =
    Relation.of_list orders [ row "ada" "stout" 2; row "cyd" "porter" 3 ]
  in
  Format.printf "monday orders:@.%a@.@." Relation.pp_table monday;

  (* 3. A database is a set of named relations. *)
  let db =
    Database.of_relations [ ("monday", monday); ("tuesday", tuesday) ]
  in

  (* 4. The algebra: ⊎ adds multiplicities, − is monus, ∩ is minimum. *)
  let both = Expr.union (Expr.rel "monday") (Expr.rel "tuesday") in
  Format.printf "monday ⊎ tuesday:@.%a@.@." Relation.pp_table (Eval.eval db both);
  let only_monday = Expr.diff (Expr.rel "monday") (Expr.rel "tuesday") in
  Format.printf "monday − tuesday (monus):@.%a@.@." Relation.pp_table
    (Eval.eval db only_monday);

  (* 5. Projection does NOT remove duplicates (the bag point): the
     customers column keeps one entry per order. *)
  let customers = Expr.project_attrs [ 1 ] both in
  Format.printf "all ordering customers (bag):@.%a@.@." Relation.pp_table
    (Eval.eval db customers);
  Format.printf "distinct customers (δ):@.%a@.@." Relation.pp_table
    (Eval.eval db (Expr.unique customers));

  (* 6. Aggregation is multiplicity-aware: ada's duplicated order counts
     twice in the sum. *)
  let per_customer =
    Expr.group_by [ 1 ] [ (Aggregate.Sum, 3); (Aggregate.Cnt, 1) ] both
  in
  Format.printf "qty per customer (Γ):@.%a@.@." Relation.pp_table
    (Eval.eval db per_customer);

  (* 7. The same query through the optimizing physical engine gives the
     same answer — guaranteed by the library's property tests. *)
  let optimized = Mxra_optimizer.Optimizer.optimize_db db per_customer in
  let via_engine = Mxra_engine.Exec.run_expr db optimized in
  Format.printf "engine agrees with the formal semantics: %b@."
    (Relation.equal via_engine (Eval.eval db per_customer));

  (* 8. Or write it in XRA, the concrete syntax of the language. *)
  let parsed =
    Mxra_xra.Parser.expr_of_string
      "groupby[%1; SUM(%3), CNT(%1)](union(monday, tuesday))"
  in
  Format.printf "XRA round trip agrees: %b@."
    (Relation.equal (Eval.eval db parsed) (Eval.eval db per_customer))
