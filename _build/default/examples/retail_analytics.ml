(* Decision support on a retail schema: three-way joins, grouped
   aggregation, SQL, integrity guards and the optimizer, all on the same
   generated dataset — the workload shape the paper's bag semantics was
   built for in PRISMA/DB.

     dune exec examples/retail_analytics.exe *)

open Mxra_relational
open Mxra_core
module W = Mxra_workload
module C = Mxra_ext.Constraints

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, (Unix.gettimeofday () -. t0) *. 1000.0)

let () =
  let rng = W.Rng.make 2026 in
  let db = W.Retail.generate ~rng ~customers:500 ~orders:5_000 () in
  Format.printf "%a@.@." Database.pp db;

  (* The generator's data satisfies the declared keys and FKs. *)
  List.iter (C.validate (Typecheck.env_of_database db)) W.Retail.constraints;
  Format.printf "integrity constraints hold: %b@.@."
    (C.satisfied db W.Retail.constraints);

  (* Revenue per country, three ways: formal semantics, raw engine,
     optimized engine — all must agree, with very different costs. *)
  let q = W.Retail.revenue_per_country in
  let reference, ref_ms = time (fun () -> Eval.eval db q) in
  let raw, raw_ms = time (fun () -> Mxra_engine.Exec.run_expr db q) in
  let optimized = Mxra_optimizer.Optimizer.optimize_db db q in
  let fast, fast_ms = time (fun () -> Mxra_engine.Exec.run_expr db optimized) in
  Format.printf "revenue per country:@.%a@." Relation.pp_table fast;
  Format.printf
    "agreement: reference=%b raw=%b   (reference %.0f ms, engine %.1f ms, \
     optimized %.1f ms)@.@."
    (Relation.equal reference fast)
    (Relation.equal raw fast)
    ref_ms raw_ms fast_ms;

  (* The same question through SQL. *)
  let env = Typecheck.env_of_database db in
  let sql =
    "SELECT country, SUM(qty) FROM customer, orders, lineitem \
     WHERE customer.id = orders.customer AND orders.id = lineitem.order_id \
     GROUP BY country"
  in
  let via_sql =
    Mxra_engine.Exec.run_expr db
      (Mxra_optimizer.Optimizer.optimize_db db
         (Mxra_sql.Translate.query_of_string env sql))
  in
  Format.printf "SQL> %s@.%a@.@." sql Relation.pp_table via_sql;

  (* Bag semantics as the business question: which products do gold
     customers keep ordering?  The duplicates ARE the answer. *)
  let gold =
    Mxra_engine.Exec.run_expr db
      (Mxra_optimizer.Optimizer.optimize_db db W.Retail.repeat_products)
  in
  let top =
    Mxra_ext.Ordered.top_k 5
      [ (2, Mxra_ext.Ordered.Desc) ]
      (Eval.group_by [ 1 ] [ (Aggregate.Cnt, 1) ] gold)
  in
  Format.printf "top products among gold customers (bag counts):@.";
  List.iter
    (fun t ->
      Format.printf "  %-8s x%s@."
        (Value.to_display_string (Tuple.attr t 1))
        (Value.to_display_string (Tuple.attr t 2)))
    top;

  (* A constraint-guarded transaction: deleting a customer with open
     orders must abort (referential integrity at the end bracket). *)
  let delete_customer id =
    Transaction.make
      ~name:(Printf.sprintf "drop customer %d" id)
      ~abort_if:(C.guard W.Retail.constraints)
      [
        Statement.Delete
          ("customer",
           Expr.select (Pred.eq (Scalar.attr 1) (Scalar.int id))
             (Expr.rel "customer"));
      ]
  in
  match Transaction.run db (delete_customer 0) with
  | Transaction.Aborted { reason; _ } ->
      Format.printf "@.deleting a referenced customer aborts: %s@." reason
  | Transaction.Committed _ ->
      Format.printf "@.customer 0 had no orders; delete committed@."
