(* Transactions in anger (Section 4): a small warehouse keeps stock and
   an order log; order fulfilment is a multi-statement transaction that
   must be atomic — either the stock is decremented AND the order is
   logged, or neither happens.

     dune exec examples/inventory_transactions.exe *)

open Mxra_relational
open Mxra_core

let stock_schema =
  Schema.of_list [ ("item", Domain.DStr); ("qty", Domain.DInt) ]

let log_schema =
  Schema.of_list
    [ ("item", Domain.DStr); ("amount", Domain.DInt); ("day", Domain.DInt) ]

let stock_row i q = Tuple.of_list [ Value.Str i; Value.Int q ]

let initial =
  Database.of_relations
    [
      ("stock",
       Relation.of_list stock_schema
         [ stock_row "bolt" 100; stock_row "nut" 80; stock_row "washer" 10 ]);
      ("shipments", Relation.empty log_schema);
    ]

(* Fulfil [amount] of [item] on [day]:
     1. remember the affected row in a temporary,
     2. decrement its quantity with an update statement,
     3. append to the shipment log,
   and abort the whole bracket if the stock would go negative. *)
let fulfil item amount day =
  let this_item =
    Expr.select (Pred.eq (Scalar.attr 1) (Scalar.str item)) (Expr.rel "stock")
  in
  let would_go_negative db =
    Relation.mem
      (Tuple.of_list [ Value.Str item ])
      (Eval.eval db
         (Expr.project_attrs [ 1 ]
            (Expr.select (Pred.lt (Scalar.attr 2) (Scalar.int 0))
               (Expr.rel "stock"))))
  in
  Transaction.make
    ~name:(Printf.sprintf "fulfil %d %s" amount item)
    ~abort_if:would_go_negative
    [
      Statement.Assign ("affected", this_item);
      Statement.Update
        ("stock", Expr.rel "affected",
         [ Scalar.attr 1; Scalar.sub (Scalar.attr 2) (Scalar.int amount) ]);
      Statement.Insert
        ("shipments",
         Expr.const
           (Relation.of_list log_schema
              [ Tuple.of_list [ Value.Str item; Value.Int amount; Value.Int day ] ]));
    ]

let restock item amount =
  Transaction.make ~name:(Printf.sprintf "restock %s" item)
    [
      Statement.Update
        ("stock",
         Expr.select (Pred.eq (Scalar.attr 1) (Scalar.str item)) (Expr.rel "stock"),
         [ Scalar.attr 1; Scalar.add (Scalar.attr 2) (Scalar.int amount) ]);
    ]

let () =
  Format.printf "initial stock:@.%a@.@." Relation.pp_table
    (Database.find "stock" initial);

  let workload =
    [
      fulfil "bolt" 30 1;
      fulfil "washer" 25 1;  (* only 10 in stock: must abort *)
      fulfil "nut" 80 2;     (* drains nuts to exactly 0: fine *)
      restock "washer" 50;
      fulfil "washer" 25 3;  (* now it fits *)
      fulfil "gizmo" 1 3;    (* unknown item: no row matches, log-only *)
    ]
  in
  let final, outcomes = Transaction.run_all initial workload in

  List.iter2
    (fun txn outcome ->
      match outcome with
      | Transaction.Committed _ ->
          Format.printf "  %-18s committed@." txn.Transaction.name
      | Transaction.Aborted { reason; _ } ->
          Format.printf "  %-18s ABORTED (%s)@." txn.Transaction.name reason)
    workload outcomes;

  Format.printf "@.final stock (t=%d):@.%a@.@."
    (Database.logical_time final)
    Relation.pp_table (Database.find "stock" final);
  Format.printf "shipment log:@.%a@.@." Relation.pp_table
    (Database.find "shipments" final);

  (* Atomicity, checked: replaying only the committed transactions from
     the initial state gives exactly the final state. *)
  let committed_only =
    List.filter_map
      (fun (txn, outcome) ->
        if Transaction.committed outcome then Some txn else None)
      (List.combine workload outcomes)
  in
  let replayed, _ = Transaction.run_all initial committed_only in
  Format.printf "replaying the committed subset reproduces the state: %b@."
    (Database.equal_states final replayed);

  (* The failed shipment left no trace — neither stock nor log moved
     between its pre- and post-state. *)
  Format.printf "aborted transactions are invisible in the log: %b@."
    (Relation.cardinal (Database.find "shipments" final) = 4)
