(* The extensions from the paper's conclusions: PRISMA-style parallel
   operators (simulated by hash partitioning) and the transitive closure
   operator, on a flight-network scenario.

     dune exec examples/parallel_and_closure.exe *)

open Mxra_relational
open Mxra_core
open Mxra_ext
module W = Mxra_workload

let () =
  let rng = W.Rng.make 99 in

  (* --- parallel operators --------------------------------------------- *)
  let sales = W.Synth.two_column_int ~rng ~size:100_000 ~distinct:512 in
  Format.printf "sales: %d tuples, %d distinct@.@." (Relation.cardinal sales)
    (Relation.support_size sales);

  Format.printf "parallel grouping (Γ region → SUM) by fragment count:@.";
  List.iter
    (fun parts ->
      let report =
        Parallel.par_group_by ~parts ~attrs:[ 1 ]
          ~aggs:[ (Aggregate.Sum, 2) ] sales
      in
      Format.printf "  p=%2d  max fragment=%6d tuples  simulated speedup=%.2fx@."
        parts
        (Array.fold_left max 0 report.Parallel.fragment_work)
        report.Parallel.speedup)
    [ 1; 2; 4; 8; 16 ];

  (* Skew breaks it: a Zipf-heavy key column concentrates the work. *)
  let skewed =
    W.Synth.relation ~rng
      ~schema:(Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ])
      ~size:50_000 ~dup_factor:4 ~skew:1.3 ()
  in
  let report =
    Parallel.par_group_by ~parts:8 ~attrs:[ 1 ] ~aggs:[ (Aggregate.Cnt, 1) ]
      skewed
  in
  Format.printf
    "@.same with a Zipf(1.3) key column, p=8: speedup only %.2fx@.@."
    report.Parallel.speedup;

  (* Correctness is never at stake — merge of fragments equals the
     sequential operator (tested; shown here once). *)
  let seq = Eval.group_by [ 1 ] [ (Aggregate.Cnt, 1) ] skewed in
  let report' =
    Parallel.par_group_by ~parts:8 ~attrs:[ 1 ] ~aggs:[ (Aggregate.Cnt, 1) ] skewed
  in
  Format.printf "partitioned result = sequential result: %b@.@."
    (Relation.equal seq report'.Parallel.result);

  (* --- transitive closure ---------------------------------------------- *)
  let flight_schema =
    Schema.of_list [ ("from", Domain.DStr); ("to", Domain.DStr) ]
  in
  let hop a b = Tuple.of_list [ Value.Str a; Value.Str b ] in
  let flights =
    Relation.of_list flight_schema
      [
        hop "AMS" "LHR"; hop "LHR" "JFK"; hop "JFK" "SFO";
        hop "AMS" "CDG"; hop "CDG" "JFK"; hop "SFO" "NRT";
        hop "NRT" "SYD"; hop "BRU" "AMS";
      ]
  in
  Format.printf "direct flights:@.%a@.@." Relation.pp_table flights;
  let reachable = Closure.closure flights in
  Format.printf "reachable city pairs (α, transitive closure): %d@.@."
    (Relation.cardinal reachable);
  Format.printf "reachable from AMS: %s@.@."
    (String.concat ", "
       (List.map Value.to_string (Closure.reachable flights (Value.Str "AMS"))));

  (* Closure composes with the algebra: reachability over a *selected*
     subnetwork (drop transatlantic hops via JFK). *)
  let no_jfk =
    Expr.select
      (Pred.And
         (Pred.ne (Scalar.attr 1) (Scalar.str "JFK"),
          Pred.ne (Scalar.attr 2) (Scalar.str "JFK")))
      (Expr.const flights)
  in
  let reduced = Closure.closure_expr no_jfk Database.empty in
  Format.printf "pairs without JFK connections: %d@.@."
    (Relation.cardinal reduced);

  (* Scaling: semi-naive vs naive on a growing random DAG. *)
  Format.printf "closure scaling (random DAGs):@.";
  List.iter
    (fun nodes ->
      let g = W.Synth.chain_relation ~rng ~nodes ~extra_edges:nodes in
      let t0 = Unix.gettimeofday () in
      let c = Closure.closure g in
      let semi = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let t0 = Unix.gettimeofday () in
      ignore (Closure.closure_naive g);
      let naive = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Format.printf
        "  n=%4d  edges=%5d  closure=%7d pairs  semi-naive %.1f ms  naive %.1f ms@."
        nodes (Relation.cardinal g) (Relation.cardinal c) semi naive)
    [ 50; 100; 200; 400 ]
