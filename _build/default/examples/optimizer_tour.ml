(* A tour of Section 3.3 in executable form: the expression equivalences
   as rewrites, what the optimizer does with a naive query, and how much
   the rewrites matter on real (generated) data.

     dune exec examples/optimizer_tour.exe *)

open Mxra_relational
open Mxra_core
open Mxra_engine
open Mxra_optimizer
module W = Mxra_workload

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, (Unix.gettimeofday () -. t0) *. 1000.0)

let () =
  let rng = W.Rng.make 2024 in
  (* Three relations with very different sizes: the raw material for a
     join-order story. *)
  let customers = W.Synth.two_column_int ~rng ~size:5_000 ~distinct:1_000 in
  let orders = W.Synth.two_column_int ~rng ~size:20_000 ~distinct:1_000 in
  let vip = W.Synth.two_column_int ~rng ~size:50 ~distinct:1_000 in
  let db =
    Database.of_relations
      [ ("customers", customers); ("orders", orders); ("vip", vip) ]
  in
  let stats = Stats.env_of_database db in
  let schemas = Typecheck.env_of_database db in

  (* The worst reasonable formulation: one big selection over a pure
     triple product — which is how a naive SQL translation looks. *)
  let naive =
    Expr.select
      (Pred.conj
         [
           Pred.eq (Scalar.attr 1) (Scalar.attr 3);  (* customers ⋈ orders *)
           Pred.eq (Scalar.attr 1) (Scalar.attr 5);  (* ⋈ vip *)
           Pred.gt (Scalar.attr 4) (Scalar.int 500);
         ])
      (Expr.product
         (Expr.product (Expr.rel "customers") (Expr.rel "orders"))
         (Expr.rel "vip"))
  in
  Format.printf "naive query:@.  %s@.@." (Expr.to_string naive);

  let optimized, report = Optimizer.explain ~stats ~schemas naive in
  Format.printf "optimized:@.  %s@.@." (Expr.to_string optimized);
  Format.printf "estimated cost: %.0f -> %.0f intermediate tuples@.@."
    report.Optimizer.input_cost report.Optimizer.output_cost;

  Format.printf "physical plan:@.%s@."
    (Physical.to_string (Planner.plan db optimized));

  (* Measure.  The naive plan still benefits from the planner's σ∘×
     fusion, so disable even that by timing the raw nested-loop shape. *)
  let optimized_result, fast = time (fun () -> Exec.run_expr db optimized) in
  let naive_result, slow = time (fun () -> Exec.run_expr db naive) in
  Format.printf "results equal: %b@."
    (Relation.equal optimized_result naive_result);
  Format.printf "naive (planner-fused): %.1f ms;  optimized: %.1f ms@.@."
    slow fast;

  (* Rewrites one by one, on the paper's own Example 3.2 shape. *)
  let beer = W.Beer.tiny in
  let beer_env = Typecheck.env_of_database beer in
  Format.printf "Example 3.2 before:@.  %s@." (Expr.to_string W.Beer.example_3_2);
  Format.printf "after normalize (projection narrowing = the paper's own rewrite):@.  %s@.@."
    (Expr.to_string (Rules.normalize beer_env W.Beer.example_3_2));

  (* Theorem 3.1 as rewrites. *)
  let inter = Expr.intersect (Expr.rel "beer") (Expr.rel "beer") in
  (match Equiv.derive_intersect inter with
  | Some derived ->
      Format.printf "Theorem 3.1:@.  %s@.  = %s@." (Expr.to_string inter)
        (Expr.to_string derived)
  | None -> ());
  let join_form =
    Expr.join (Pred.eq (Scalar.attr 2) (Scalar.attr 4)) (Expr.rel "beer")
      (Expr.rel "brewery")
  in
  (match Equiv.derive_join join_form with
  | Some derived ->
      Format.printf "  %s@.  = %s@.@." (Expr.to_string join_form)
        (Expr.to_string derived)
  | None -> ());

  (* And the δ non-law, on real data. *)
  let e1 = Expr.rel "beer" and e2 = Expr.rel "beer" in
  let lhs = Expr.unique (Expr.union e1 e2) in
  let wrong = Expr.union (Expr.unique e1) (Expr.unique e2) in
  Format.printf
    "δ(E ⊎ E) = δE ⊎ δE?  %b  (the paper's non-law: δ does not distribute)@."
    (Equiv.equivalent_on beer lhs wrong);
  match Equiv.unique_union lhs with
  | Some rhs ->
      Format.printf "δ(E1 ⊎ E2) = δ(δE1 ⊎ δE2)?  %b@."
        (Equiv.equivalent_on beer lhs rhs)
  | None -> ()
