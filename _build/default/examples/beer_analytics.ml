(* The paper's running example, end to end: the beer database of
   Section 3, Examples 3.1 and 3.2, the set-semantics pitfall Example
   3.2 warns about, and the same queries through SQL.

     dune exec examples/beer_analytics.exe *)

open Mxra_relational
open Mxra_core
module W = Mxra_workload

let show title r = Format.printf "%s@.%a@.@." title Relation.pp_table r

let () =
  let db = W.Beer.tiny in
  Format.printf "%a@.@." Database.pp db;

  (* Example 3.1: names of beers brewn in the Netherlands.  Three Dutch
     breweries brew a Pilsener, so the bag result keeps three copies —
     "If several Dutch brewers brew beers with the same name, the result
     of this expression will contain duplicates." *)
  show "Example 3.1 — π name (σ country='NL' (beer ⋈ brewery)):"
    (Eval.eval db W.Beer.example_3_1);

  (* Example 3.2: average alcohol percentage per country, with and
     without the intermediate projection that shrinks the join result.
     Under multi-set semantics both give the same (correct) answer. *)
  let full = Eval.eval db W.Beer.example_3_2 in
  let reduced = Eval.eval db W.Beer.example_3_2_reduced in
  show "Example 3.2 — AVG(alcperc) per country:" full;
  Format.printf "with the reducing projection inserted: equal = %b@.@."
    (Relation.equal full reduced);

  (* The pitfall: under SET semantics the projection would eliminate
     duplicate (alcperc, country) pairs and skew the average.  We build
     a database where two Dutch beers share 5.0%% to make it visible. *)
  let rigged =
    Database.set "beer"
      (Relation.of_list W.Beer.beer_schema
         [
           Tuple.of_list [ Value.Str "A"; Value.Str "Guineken"; Value.Float 5.0 ];
           Tuple.of_list [ Value.Str "B"; Value.Str "Grolsch"; Value.Float 5.0 ];
           Tuple.of_list [ Value.Str "C"; Value.Str "Guineken"; Value.Float 8.0 ];
         ])
      db
  in
  let set_variant =
    Expr.group_by [ 2 ] [ (Aggregate.Avg, 1) ]
      (Expr.unique
         (Expr.project_attrs [ 3; 6 ]
            (Expr.join (Pred.eq (Scalar.attr 2) (Scalar.attr 4))
               (Expr.rel "beer") (Expr.rel "brewery"))))
  in
  show "bag semantics (correct; NL = (5+5+8)/3 = 6.0):"
    (Eval.eval rigged W.Beer.example_3_2);
  show "set semantics (wrong; duplicate 5.0 collapsed, NL = 6.5):"
    (Eval.eval rigged set_variant);

  (* The same queries through the SQL front-end, as printed in the
     paper. *)
  let env = Typecheck.env_of_database db in
  let sql =
    "SELECT country, AVG(alcperc) FROM beer, brewery \
     WHERE beer.brewery = brewery.name GROUP BY country"
  in
  Format.printf "SQL> %s@.@." sql;
  show "translated and executed:"
    (Mxra_engine.Exec.run_expr db (Mxra_sql.Translate.query_of_string env sql));

  (* Example 4.1: Guineken raises its percentages by 10%. *)
  Format.printf "Example 4.1 — %s@.@."
    (Statement.to_string W.Beer.example_4_1);
  let db', _ = Statement.exec db W.Beer.example_4_1 in
  show "beer after the update:" (Database.find "beer" db');

  (* Scale it up: the generator keeps the schema and the duplication
     structure, so the same queries run on 50k rows. *)
  let big =
    W.Beer.generate ~rng:(W.Rng.make 7) ~breweries:200 ~beers:50_000 ()
  in
  let t0 = Unix.gettimeofday () in
  let result =
    Mxra_engine.Exec.run_expr big
      (Mxra_optimizer.Optimizer.optimize_db big W.Beer.example_3_2)
  in
  Format.printf
    "Example 3.2 on 50k generated beers: %d countries in %.1f ms@."
    (Relation.cardinal result)
    ((Unix.gettimeofday () -. t0) *. 1000.0)
