lib/storage/codec.mli: Database Mxra_core Mxra_relational
