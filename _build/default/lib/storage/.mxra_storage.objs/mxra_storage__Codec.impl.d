lib/storage/codec.ml: Buffer Database Domain Format List Mxra_core Mxra_relational Mxra_xra Option Printf Relation Schema String
