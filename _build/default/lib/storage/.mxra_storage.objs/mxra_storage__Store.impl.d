lib/storage/store.ml: Codec Database Filename In_channel List Mxra_core Mxra_relational Out_channel Printf Program Statement String Sys Transaction
