lib/storage/store.mli: Database Mxra_core Mxra_relational
