(** Textual serialisation of database states.

    The snapshot format reuses the XRA concrete syntax: a database is a
    sequence of [create] commands and literal-relation [insert]
    statements, so a snapshot file is a valid XRA script and can be
    replayed by the ordinary parser.  Choosing the language itself as
    the storage format keeps exactly one grammar in the system and makes
    snapshots human-readable and hand-editable.

    Only persistent relations are serialised; temporaries are
    transaction-local by Definition 4.3 and never reach disk. *)

open Mxra_relational

val encode_database : Database.t -> string
(** An XRA script that rebuilds the persistent relations (sorted by
    name).  Logical time is recorded in a leading comment directive
    [-- @time N]. *)

val decode_database : string -> Database.t
(** Rebuild a state from a snapshot script.
    @raise Mxra_xra.Parser.Parse_error / [Mxra_xra.Lexer.Lex_error] on a
    corrupt snapshot. *)

val encode_statement : Mxra_core.Statement.t -> string
(** One-line XRA rendering of a statement, for the write-ahead log. *)

val decode_statement : string -> Mxra_core.Statement.t
