type t = Value.t array

let of_list vs = Array.of_list vs
let of_array a = Array.copy a
let to_list t = Array.to_list t
let to_array t = Array.copy t
let arity t = Array.length t

let attr t i =
  if i < 1 || i > Array.length t then
    invalid_arg
      (Printf.sprintf "Tuple.attr: index %%%d out of range 1..%d" i
         (Array.length t))
  else t.(i - 1)

let attr_opt t i =
  if i < 1 || i > Array.length t then None else Some t.(i - 1)

let project indices t = Array.of_list (List.map (attr t) indices)
let concat t1 t2 = Array.append t1 t2

let equal t1 t2 =
  Array.length t1 = Array.length t2
  && Array.for_all2 Value.equal t1 t2

let compare t1 t2 =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  if n1 <> n2 then Int.compare n1 n2
  else
    let rec loop i =
      if i = n1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Hashtbl.hash (Array.map Value.hash t)
let unit = [||]

let pp ppf t =
  Format.fprintf ppf "(@[<hov>%a@])"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_seq t)

let to_string t = Format.asprintf "%a" pp t
