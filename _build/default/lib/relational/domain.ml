type t =
  | DInt
  | DFloat
  | DStr
  | DBool

let equal d1 d2 =
  match (d1, d2) with
  | DInt, DInt | DFloat, DFloat | DStr, DStr | DBool, DBool -> true
  | (DInt | DFloat | DStr | DBool), _ -> false

let rank = function DInt -> 0 | DFloat -> 1 | DStr -> 2 | DBool -> 3
let compare d1 d2 = Int.compare (rank d1) (rank d2)

let of_value = function
  | Value.Int _ -> DInt
  | Value.Float _ -> DFloat
  | Value.Str _ -> DStr
  | Value.Bool _ -> DBool

let member v d = equal (of_value v) d
let is_numeric = function DInt | DFloat -> true | DStr | DBool -> false

let to_string = function
  | DInt -> "int"
  | DFloat -> "float"
  | DStr -> "str"
  | DBool -> "bool"

let pp ppf d = Format.pp_print_string ppf (to_string d)

let of_string s =
  match String.lowercase_ascii s with
  | "int" | "integer" -> Some DInt
  | "float" | "real" | "double" -> Some DFloat
  | "str" | "string" | "varchar" | "text" | "char" -> Some DStr
  | "bool" | "boolean" -> Some DBool
  | _ -> None
