type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Incomparable of t * t

(* Domain-major order: Int < Float < Str < Bool.  Stable and explicit so
   that serialized orderings never depend on compiler representation. *)
let rank = function Int _ -> 0 | Float _ -> 1 | Str _ -> 2 | Bool _ -> 3

let compare v1 v2 =
  match (v1, v2) with
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Str a, Str b -> String.compare a b
  | Bool a, Bool b -> Bool.compare a b
  | (Int _ | Float _ | Str _ | Bool _), _ ->
      Int.compare (rank v1) (rank v2)

let compare_same_domain v1 v2 =
  match (v1, v2) with
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Str a, Str b -> String.compare a b
  | Bool a, Bool b -> Bool.compare a b
  | (Int _ | Float _ | Str _ | Bool _), _ -> raise (Incomparable (v1, v2))

let equal v1 v2 = compare v1 v2 = 0

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Float f -> Hashtbl.hash (1, f)
  | Str s -> Hashtbl.hash (2, s)
  | Bool b -> Hashtbl.hash (3, b)

(* Floats print with an explicit decimal point or exponent so that the
   concrete syntaxes re-read them into the float domain ("0" would come
   back as an integer), and with enough digits to round-trip exactly. *)
let pp_float ppf f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Format.fprintf ppf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then Format.pp_print_string ppf s
    else Format.fprintf ppf "%.17g" f

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float f -> pp_float ppf f
  | Str s ->
      let escaped = String.concat "''" (String.split_on_char '\'' s) in
      Format.fprintf ppf "'%s'" escaped
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v

let to_display_string = function
  | Float f -> Printf.sprintf "%.6g" f
  | (Int _ | Str _ | Bool _) as v -> to_string v
let is_numeric = function Int _ | Float _ -> true | Str _ | Bool _ -> false

let as_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | Str _ | Bool _ -> invalid_arg "Value.as_float: non-numeric value"
