(** Tuples with positional attribute addressing (Definition 2.4).

    A tuple of schema [R] is an element of [dom(R)].  Attributes are
    addressed by 1-based index, written [%i] in the paper ("prefixed
    integers" that disambiguate attribute positions from integer
    constants).  [attr t i] is the paper's [t.i], [arity] is [#t],
    [project] is the tuple projection [π_a(t)] and [concat] is the tuple
    concatenation [t1 ⊕ t2]. *)

type t
(** An immutable tuple of atomic values. *)

val of_list : Value.t list -> t
val of_array : Value.t array -> t
(** The array is copied; later mutation of the argument is harmless. *)

val to_list : t -> Value.t list
val to_array : t -> Value.t array
(** A fresh array. *)

val arity : t -> int
(** [#t]: the number of attributes. *)

val attr : t -> int -> Value.t
(** [attr t i] is the value of the [i]th attribute, 1-based ([t.i]).
    @raise Invalid_argument if [i < 1 || i > arity t]. *)

val attr_opt : t -> int -> Value.t option

val project : int list -> t -> t
(** [project [i1; ...; in] t] concatenates attributes [i1 ... in] of [t]
    into a new tuple (Definition 2.4, [π_a(r)]).  Indices may repeat and
    appear in any order; [n >= 1] per the paper, but the empty list is
    accepted and yields the 0-ary tuple (needed for the empty-[α] groupby
    of Definition 3.4).
    @raise Invalid_argument on an out-of-range index. *)

val concat : t -> t -> t
(** [concat t1 t2] is [t1 ⊕ t2]. *)

val equal : t -> t -> bool
(** Attribute-wise equality; tuples of different arity are unequal.  The
    paper defines [=] only for same-schema tuples; extending it by
    inequality keeps it total without changing the defined cases. *)

val compare : t -> t -> int
(** Lexicographic total order (for bag storage). *)

val hash : t -> int

val unit : t
(** The 0-ary tuple, the single inhabitant of the empty schema. *)

val pp : Format.formatter -> t -> unit
(** [(1, 'a', true)]. *)

val to_string : t -> string
