module Catalog = Map.Make (String)

type entry = {
  relation : Relation.t;
  temporary : bool;
}

type t = {
  catalog : entry Catalog.t;
  time : int;
}

exception Unknown_relation of string
exception Duplicate_relation of string

let empty = { catalog = Catalog.empty; time = 0 }

let find_entry name db =
  match Catalog.find_opt name db.catalog with
  | Some e -> e
  | None -> raise (Unknown_relation name)

let create_with name relation db =
  if Catalog.mem name db.catalog then raise (Duplicate_relation name);
  { db with catalog = Catalog.add name { relation; temporary = false } db.catalog }

let create name schema db = create_with name (Relation.empty schema) db

let of_relations bindings =
  List.fold_left (fun db (name, r) -> create_with name r db) empty bindings

let mem name db = Catalog.mem name db.catalog
let find name db = (find_entry name db).relation
let find_opt name db =
  Option.map (fun e -> e.relation) (Catalog.find_opt name db.catalog)

let schema_of name db = Relation.schema (find name db)

let set name relation db =
  let e = find_entry name db in
  if not (Schema.compatible (Relation.schema e.relation) (Relation.schema relation))
  then
    raise
      (Relation.Schema_mismatch
         (Printf.sprintf "Database.set: new contents of %s change its schema"
            name));
  { db with catalog = Catalog.add name { e with relation } db.catalog }

let assign_temporary name relation db =
  (match Catalog.find_opt name db.catalog with
  | Some { temporary = false; _ } -> raise (Duplicate_relation name)
  | Some { temporary = true; _ } | None -> ());
  { db with catalog = Catalog.add name { relation; temporary = true } db.catalog }

let is_temporary name db = (find_entry name db).temporary

let drop name db =
  if not (Catalog.mem name db.catalog) then raise (Unknown_relation name);
  { db with catalog = Catalog.remove name db.catalog }

let drop_temporaries db =
  { db with catalog = Catalog.filter (fun _ e -> not e.temporary) db.catalog }

let relation_names db = List.map fst (Catalog.bindings db.catalog)

let persistent_names db =
  Catalog.bindings db.catalog
  |> List.filter_map (fun (name, e) -> if e.temporary then None else Some name)

let schemas db =
  Catalog.bindings db.catalog
  |> List.filter_map (fun (name, e) ->
         if e.temporary then None
         else Some (name, Relation.schema e.relation))

let logical_time db = db.time
let tick db = { db with time = db.time + 1 }

let same_schema db1 db2 =
  let s1 = schemas db1 and s2 = schemas db2 in
  List.length s1 = List.length s2
  && List.for_all2
       (fun (n1, sc1) (n2, sc2) -> n1 = n2 && Schema.compatible sc1 sc2)
       s1 s2

let equal_states db1 db2 =
  same_schema db1 db2
  && List.for_all
       (fun name -> Relation.equal (find name db1) (find name db2))
       (persistent_names db1)

let pp ppf db =
  Format.fprintf ppf "@[<v>database at t=%d:@," db.time;
  List.iter
    (fun (name, e) ->
      Format.fprintf ppf "  %s%s %a (%d tuples)@," name
        (if e.temporary then " [temp]" else "")
        Schema.pp
        (Relation.schema e.relation)
        (Relation.cardinal e.relation))
    (Catalog.bindings db.catalog);
  Format.fprintf ppf "@]"
