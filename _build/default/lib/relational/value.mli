(** Atomic values (Definition 2.1).

    A value is an element of one of the four atomic domains of the model:
    integers, reals, booleans, and strings.  Values are {e atomic}: no
    operator of the relational model looks inside them; only the scalar
    expression language of the extended projection (Definition 3.4)
    computes with them.

    Comparison between values of different domains is a type error in the
    algebra; it is surfaced here as the {!Incomparable} exception so that
    the type checker (which prevents it statically) and the evaluator
    (which would otherwise mask bugs) can both rely on it. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Incomparable of t * t
(** Raised by {!compare_same_domain} on values from different domains. *)

val compare : t -> t -> int
(** Total order across all domains (domain-major, then value order).
    Used to store heterogeneous tuples in ordered containers; never
    observable from the algebra, which is well-typed. *)

val compare_same_domain : t -> t -> int
(** Order of two values of the same domain, as used by selection
    predicates and MIN/MAX aggregates.
    @raise Incomparable if the domains differ. *)

val equal : t -> t -> bool
(** Equality; values of different domains are unequal. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** [42], [3.14], ['abc'] (single-quoted, quotes doubled), [true]. *)

val to_string : t -> string

val to_display_string : t -> string
(** Like {!to_string} but floats are shortened to 6 significant digits —
    for tables shown to humans, not for syntax that must re-parse. *)

val is_numeric : t -> bool
(** True for [Int] and [Float]; the domains accepted by SUM and AVG. *)

val as_float : t -> float
(** Numeric value as a float.
    @raise Invalid_argument on non-numeric values. *)
