type attribute = {
  name : string;
  domain : Domain.t;
}

type t = attribute array

let make attrs = Array.of_list attrs

let of_domains ds =
  Array.of_list
    (List.mapi (fun i d -> { name = Printf.sprintf "a%d" (i + 1); domain = d }) ds)

let of_list pairs =
  Array.of_list (List.map (fun (name, domain) -> { name; domain }) pairs)

let attributes s = Array.to_list s
let arity s = Array.length s
let domains s = List.map (fun a -> a.domain) (Array.to_list s)

let attribute s i =
  if i < 1 || i > Array.length s then
    invalid_arg
      (Printf.sprintf "Schema.attribute: index %%%d out of range 1..%d" i
         (Array.length s))
  else s.(i - 1)

let domain s i = (attribute s i).domain

let index_of_name s name =
  let target = String.lowercase_ascii name in
  let rec loop i =
    if i >= Array.length s then None
    else if String.lowercase_ascii s.(i).name = target then Some (i + 1)
    else loop (i + 1)
  in
  loop 0

let compatible s1 s2 =
  Array.length s1 = Array.length s2
  && Array.for_all2 (fun a1 a2 -> Domain.equal a1.domain a2.domain) s1 s2

let project indices s = Array.of_list (List.map (attribute s) indices)

let concat s1 s2 =
  let taken = Array.to_list s1 |> List.map (fun a -> a.name) in
  let fresh a =
    if List.mem a.name taken then { a with name = a.name ^ "'" } else a
  in
  Array.append s1 (Array.map fresh s2)

let member t s =
  Tuple.arity t = Array.length s
  && List.for_all2 Domain.member (Tuple.to_list t) (domains s)

let rename i name s =
  let a = attribute s i in
  let s' = Array.copy s in
  s'.(i - 1) <- { a with name };
  s'

let unit = [||]

let equal s1 s2 =
  Array.length s1 = Array.length s2
  && Array.for_all2
       (fun a1 a2 -> a1.name = a2.name && Domain.equal a1.domain a2.domain)
       s1 s2

let pp ppf s =
  let pp_attr ppf a = Format.fprintf ppf "%s:%a" a.name Domain.pp a.domain in
  Format.fprintf ppf "(@[<hov>%a@])"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_attr)
    (Array.to_seq s)

let to_string s = Format.asprintf "%a" pp s
