module Bag = Mxra_multiset.Multiset.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
  let pp = Tuple.pp
end)

type t = {
  schema : Schema.t;
  bag : Bag.t;
}

exception Schema_mismatch of string

let mismatch fmt = Format.kasprintf (fun s -> raise (Schema_mismatch s)) fmt

let check_tuple schema t =
  if not (Schema.member t schema) then
    mismatch "tuple %a does not belong to schema %a" Tuple.pp t Schema.pp
      schema

let empty schema = { schema; bag = Bag.empty }

let of_bag schema bag =
  Bag.iter (fun t _ -> check_tuple schema t) bag;
  { schema; bag }

let of_bag_unchecked schema bag = { schema; bag }

let of_list schema tuples =
  List.iter (check_tuple schema) tuples;
  { schema; bag = Bag.of_list tuples }

let of_counted_list schema pairs =
  List.iter (fun (t, _) -> check_tuple schema t) pairs;
  { schema; bag = Bag.of_counted_list pairs }

let add ?count t r =
  check_tuple r.schema t;
  { r with bag = Bag.add ?count t r.bag }

let schema r = r.schema
let bag r = r.bag
let multiplicity t r = Bag.multiplicity t r.bag
let mem t r = Bag.mem t r.bag
let cardinal r = Bag.cardinal r.bag
let support_size r = Bag.support_size r.bag
let is_empty r = Bag.is_empty r.bag
let to_counted_list r = Bag.to_counted_list r.bag
let to_list r = Bag.to_list r.bag

let require_compatible op r1 r2 =
  if not (Schema.compatible r1.schema r2.schema) then
    mismatch "%s: incompatible schemas %a and %a" op Schema.pp r1.schema
      Schema.pp r2.schema

let equal r1 r2 =
  require_compatible "Relation.equal" r1 r2;
  Bag.equal r1.bag r2.bag

let subset r1 r2 =
  require_compatible "Relation.subset" r1 r2;
  Bag.subset r1.bag r2.bag

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp r.schema Bag.pp r.bag

let pp_table ppf r =
  let attrs = Schema.attributes r.schema in
  let header =
    List.map (fun (a : Schema.attribute) -> a.name) attrs @ [ "#" ]
  in
  let rows =
    List.map
      (fun (t, n) ->
        List.map Value.to_display_string (Tuple.to_list t) @ [ string_of_int n ])
      (to_counted_list r)
  in
  let columns = List.length header in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      (String.length (List.nth header i))
      rows
  in
  let widths = List.init columns width in
  let pp_row ppf row =
    List.iteri
      (fun i cell ->
        Format.fprintf ppf "| %-*s " (List.nth widths i) cell)
      row;
    Format.fprintf ppf "|@,"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  Format.fprintf ppf "@[<v>%s@,%a%s@," rule pp_row header rule;
  List.iter (pp_row ppf) rows;
  Format.fprintf ppf "%s (%d tuples, %d distinct)@]" rule (cardinal r)
    (support_size r)

let to_string r = Format.asprintf "%a" pp r
