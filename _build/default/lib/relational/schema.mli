(** Relation schemas (Definition 2.2).

    A relation schema consists of a list of attributes, each defined on a
    domain.  Attributes are ordered so they can be addressed by index
    ([%i], 1-based); names are a notational convenience carried for
    printing and for the SQL front-end's name resolution, and impose no
    semantics — two schemas are {e compatible} when their domain lists
    agree, regardless of names.

    The schema-level projection and concatenation operators mirror the
    tuple-level ones, as announced after Definition 2.4. *)

type attribute = {
  name : string;  (** Display/SQL name; not semantically significant. *)
  domain : Domain.t;
}

type t
(** An ordered list of attributes. *)

val make : attribute list -> t

val of_domains : Domain.t list -> t
(** Schema with generated names [a1], [a2], ... *)

val of_list : (string * Domain.t) list -> t

val attributes : t -> attribute list
val arity : t -> int
val domains : t -> Domain.t list

val attribute : t -> int -> attribute
(** 1-based.  @raise Invalid_argument when out of range. *)

val domain : t -> int -> Domain.t
(** 1-based domain lookup. *)

val index_of_name : t -> string -> int option
(** 1-based position of the first attribute with the given name
    (case-insensitive); used by the SQL front-end. *)

val compatible : t -> t -> bool
(** Union-compatibility: same domain lists.  Required by [⊎], [−], [∩]
    and by relation comparison (Definition 2.3 assumes a common schema). *)

val project : int list -> t -> t
(** Schema counterpart of tuple projection.
    @raise Invalid_argument on out-of-range indices. *)

val concat : t -> t -> t
(** Schema counterpart of [⊕]; used by the product (Definition 3.1).
    Name clashes between the two sides are resolved by suffixing the
    right-hand names with ['] (semantics are positional anyway). *)

val member : Tuple.t -> t -> bool
(** [member t s] iff [t ∈ dom(s)]: right arity and each value in its
    attribute's domain. *)

val rename : int -> string -> t -> t
(** [rename i name s] renames the [i]th attribute (1-based). *)

val unit : t
(** The empty schema, [dom = {()}]; result schema of the empty-[α]
    groupby's input grouping. *)

val equal : t -> t -> bool
(** Structural equality including names. *)

val pp : Format.formatter -> t -> unit
(** [(name:str, alcperc:float)]. *)

val to_string : t -> string
