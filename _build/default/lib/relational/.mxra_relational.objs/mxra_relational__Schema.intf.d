lib/relational/schema.mli: Domain Format Tuple
