lib/relational/domain.mli: Format Value
