lib/relational/database.ml: Format List Map Option Printf Relation Schema String
