lib/relational/relation.ml: Format List Mxra_multiset Schema String Tuple Value
