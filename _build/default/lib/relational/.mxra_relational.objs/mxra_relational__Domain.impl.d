lib/relational/domain.ml: Format Int String Value
