lib/relational/relation.mli: Format Mxra_multiset Schema Tuple
