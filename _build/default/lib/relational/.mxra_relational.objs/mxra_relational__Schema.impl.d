lib/relational/schema.ml: Array Domain Format List Printf String Tuple
