(** Domains of atomic values (Definition 2.1).

    A domain is a set of atomic values.  The model is parameterised by
    four basic domains; more specialised domains (time, date, money) would
    be further atomic domains and can be encoded in these four. *)

type t =
  | DInt
  | DFloat
  | DStr
  | DBool

val equal : t -> t -> bool
val compare : t -> t -> int

val of_value : Value.t -> t
(** The domain a value belongs to. *)

val member : Value.t -> t -> bool
(** [member v d] iff [v] is an element of domain [d]. *)

val is_numeric : t -> bool
(** [DInt] and [DFloat]: the domains on which SUM and AVG are defined
    (Definition 3.3 requires "a numeric domain"). *)

val pp : Format.formatter -> t -> unit
(** [int], [float], [str], [bool]. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; also accepts SQL-ish spellings
    [integer], [real], [double], [varchar], [text], [boolean]. *)
