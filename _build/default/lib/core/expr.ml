open Mxra_relational

type t =
  | Rel of string
  | Const of Relation.t
  | Union of t * t
  | Diff of t * t
  | Product of t * t
  | Select of Pred.t * t
  | Project of Scalar.t list * t
  | Intersect of t * t
  | Join of Pred.t * t * t
  | Unique of t
  | GroupBy of int list * (Aggregate.kind * int) list * t

let rel name = Rel name
let const r = Const r
let union e1 e2 = Union (e1, e2)
let diff e1 e2 = Diff (e1, e2)
let product e1 e2 = Product (e1, e2)
let select p e = Select (p, e)
let project exprs e = Project (exprs, e)
let project_attrs indices e = Project (List.map Scalar.attr indices, e)
let intersect e1 e2 = Intersect (e1, e2)
let join p e1 e2 = Join (p, e1, e2)
let unique e = Unique e
let group_by attrs aggs e = GroupBy (attrs, aggs, e)
let aggregate kind p e = GroupBy ([], [ (kind, p) ], e)

let as_plain_projection exprs =
  let rec loop acc = function
    | [] -> Some (List.rev acc)
    | e :: rest -> (
        match Scalar.is_attr e with
        | Some i -> loop (i :: acc) rest
        | None -> None)
  in
  loop [] exprs

let rec size = function
  | Rel _ | Const _ -> 1
  | Select (_, e) | Project (_, e) | Unique e | GroupBy (_, _, e) ->
      1 + size e
  | Union (e1, e2)
  | Diff (e1, e2)
  | Product (e1, e2)
  | Intersect (e1, e2)
  | Join (_, e1, e2) ->
      1 + size e1 + size e2

let rec depth = function
  | Rel _ | Const _ -> 1
  | Select (_, e) | Project (_, e) | Unique e | GroupBy (_, _, e) ->
      1 + depth e
  | Union (e1, e2)
  | Diff (e1, e2)
  | Product (e1, e2)
  | Intersect (e1, e2)
  | Join (_, e1, e2) ->
      1 + max (depth e1) (depth e2)

let relations e =
  let rec collect acc = function
    | Rel name -> name :: acc
    | Const _ -> acc
    | Select (_, e) | Project (_, e) | Unique e | GroupBy (_, _, e) ->
        collect acc e
    | Union (e1, e2)
    | Diff (e1, e2)
    | Product (e1, e2)
    | Intersect (e1, e2)
    | Join (_, e1, e2) ->
        collect (collect acc e1) e2
  in
  List.sort_uniq String.compare (collect [] e)

let map_children f = function
  | (Rel _ | Const _) as e -> e
  | Union (e1, e2) -> Union (f e1, f e2)
  | Diff (e1, e2) -> Diff (f e1, f e2)
  | Product (e1, e2) -> Product (f e1, f e2)
  | Select (p, e) -> Select (p, f e)
  | Project (exprs, e) -> Project (exprs, f e)
  | Intersect (e1, e2) -> Intersect (f e1, f e2)
  | Join (p, e1, e2) -> Join (p, f e1, f e2)
  | Unique e -> Unique (f e)
  | GroupBy (attrs, aggs, e) -> GroupBy (attrs, aggs, f e)

let rec equal e1 e2 =
  match (e1, e2) with
  | Rel n1, Rel n2 -> n1 = n2
  | Const r1, Const r2 ->
      Schema.compatible (Relation.schema r1) (Relation.schema r2)
      && Relation.equal r1 r2
  | Union (a1, b1), Union (a2, b2)
  | Diff (a1, b1), Diff (a2, b2)
  | Product (a1, b1), Product (a2, b2)
  | Intersect (a1, b1), Intersect (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | Select (p1, a1), Select (p2, a2) -> Pred.equal p1 p2 && equal a1 a2
  | Project (l1, a1), Project (l2, a2) ->
      List.length l1 = List.length l2
      && List.for_all2 Scalar.equal l1 l2
      && equal a1 a2
  | Join (p1, a1, b1), Join (p2, a2, b2) ->
      Pred.equal p1 p2 && equal a1 a2 && equal b1 b2
  | Unique a1, Unique a2 -> equal a1 a2
  | GroupBy (attrs1, aggs1, a1), GroupBy (attrs2, aggs2, a2) ->
      attrs1 = attrs2 && aggs1 = aggs2 && equal a1 a2
  | ( ( Rel _ | Const _ | Union _ | Diff _ | Product _ | Select _
      | Project _ | Intersect _ | Join _ | Unique _ | GroupBy _ ),
      _ ) ->
      false

let rec pp ppf = function
  | Rel name -> Format.pp_print_string ppf name
  | Const r ->
      Format.fprintf ppf "const(%d tuples)" (Relation.cardinal r)
  | Union (e1, e2) -> Format.fprintf ppf "union(@[%a,@ %a@])" pp e1 pp e2
  | Diff (e1, e2) -> Format.fprintf ppf "diff(@[%a,@ %a@])" pp e1 pp e2
  | Product (e1, e2) ->
      Format.fprintf ppf "product(@[%a,@ %a@])" pp e1 pp e2
  | Select (p, e) ->
      Format.fprintf ppf "select[@[%a@]](@[%a@])" Pred.pp p pp e
  | Project (exprs, e) ->
      Format.fprintf ppf "project[@[%a@]](@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Scalar.pp)
        exprs pp e
  | Intersect (e1, e2) ->
      Format.fprintf ppf "intersect(@[%a,@ %a@])" pp e1 pp e2
  | Join (p, e1, e2) ->
      Format.fprintf ppf "join[@[%a@]](@[%a,@ %a@])" Pred.pp p pp e1 pp e2
  | Unique e -> Format.fprintf ppf "unique(@[%a@])" pp e
  | GroupBy (attrs, aggs, e) ->
      let pp_attr ppf i = Format.fprintf ppf "%%%d" i in
      let pp_agg ppf (kind, p) =
        Format.fprintf ppf "%a(%%%d)" Aggregate.pp kind p
      in
      Format.fprintf ppf "groupby[@[%a;@ %a@]](@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp_attr)
        attrs
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp_agg)
        aggs pp e

let to_string e = Format.asprintf "%a" pp e
