(** Reference (denotational) evaluator.

    Each operator is computed directly from its multiplicity equation in
    Definitions 3.1, 3.2 and 3.4 — this module {e is} the executable
    formal semantics, deliberately written for evidence over speed.  The
    execution engine ({!Mxra_engine}) implements the same semantics with
    physical operators; the central property test of the repository
    checks the two agree on arbitrary expressions and databases.

    Evaluate only expressions accepted by {!Typecheck}; on ill-typed
    input, typing failures surface as [Typecheck.Type_error] (schemas are
    inferred alongside the computed bags).  Genuinely dynamic failures —
    division by zero, a partial aggregate (AVG/MIN/MAX) applied to an
    empty multi-set — raise [Scalar.Eval_error] and
    [Aggregate.Undefined] respectively. *)

open Mxra_relational

val eval : Database.t -> Expr.t -> Relation.t
(** Evaluate against a database state (temporaries visible).
    @raise Database.Unknown_relation on a name absent from the catalog.
    @raise Typecheck.Type_error on ill-typed expressions.
    @raise Scalar.Eval_error on dynamic scalar failure.
    @raise Aggregate.Undefined on a partial aggregate of an empty bag. *)

val eval_closed : Expr.t -> Relation.t
(** Evaluate an expression that mentions no database relation (all
    leaves are [Const]).  @raise Database.Unknown_relation otherwise. *)

(** {1 Direct operator semantics}

    The individual multiplicity equations, usable on already-computed
    relations; [Equiv] states the paper's theorems over these. *)

val union : Relation.t -> Relation.t -> Relation.t
val diff : Relation.t -> Relation.t -> Relation.t
val product : Relation.t -> Relation.t -> Relation.t
val select : Pred.t -> Relation.t -> Relation.t
val project : Scalar.t list -> Relation.t -> Relation.t
val intersect : Relation.t -> Relation.t -> Relation.t
val join : Pred.t -> Relation.t -> Relation.t -> Relation.t
val unique : Relation.t -> Relation.t
val group_by :
  int list -> (Aggregate.kind * int) list -> Relation.t -> Relation.t
