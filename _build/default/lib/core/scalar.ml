open Mxra_relational

type t = Term.scalar =
  | Attr of int
  | Lit of Value.t
  | Binop of Term.binop * t * t
  | Neg of t
  | If of Term.pred * t * t

exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let attr i = Attr i
let int n = Lit (Value.Int n)
let float f = Lit (Value.Float f)
let str s = Lit (Value.Str s)
let bool b = Lit (Value.Bool b)
let add a b = Binop (Term.Add, a, b)
let sub a b = Binop (Term.Sub, a, b)
let mul a b = Binop (Term.Mul, a, b)
let div a b = Binop (Term.Div, a, b)

(* Footprint collection is shared with predicates; the accumulator keeps
   the traversal allocation-free until the final sort. *)
let rec collect_scalar acc = function
  | Attr i -> i :: acc
  | Lit _ -> acc
  | Binop (_, a, b) -> collect_scalar (collect_scalar acc a) b
  | Neg a -> collect_scalar acc a
  | If (c, a, b) ->
      collect_pred (collect_scalar (collect_scalar acc a) b) c

and collect_pred acc = function
  | Term.True | Term.False -> acc
  | Term.Cmp (_, a, b) -> collect_scalar (collect_scalar acc a) b
  | Term.And (p, q) | Term.Or (p, q) -> collect_pred (collect_pred acc p) q
  | Term.Not p -> collect_pred acc p

let attrs_used e = List.sort_uniq Int.compare (collect_scalar [] e)
let max_attr e = List.fold_left max 0 (collect_scalar [] e)

let rec rename subst = function
  | Attr i -> Attr (subst i)
  | Lit v -> Lit v
  | Binop (op, a, b) -> Binop (op, rename subst a, rename subst b)
  | Neg a -> Neg (rename subst a)
  | If (c, a, b) -> If (rename_pred subst c, rename subst a, rename subst b)

and rename_pred subst = function
  | Term.True -> Term.True
  | Term.False -> Term.False
  | Term.Cmp (op, a, b) -> Term.Cmp (op, rename subst a, rename subst b)
  | Term.And (p, q) -> Term.And (rename_pred subst p, rename_pred subst q)
  | Term.Or (p, q) -> Term.Or (rename_pred subst p, rename_pred subst q)
  | Term.Not p -> Term.Not (rename_pred subst p)

let shift k e = rename (fun i -> i + k) e
let is_attr = function Attr i -> Some i | Lit _ | Binop _ | Neg _ | If _ -> None

let rec infer schema = function
  | Attr i ->
      if i < 1 || i > Schema.arity schema then
        error "attribute %%%d out of range for schema %a" i Schema.pp schema
      else Schema.domain schema i
  | Lit v -> Domain.of_value v
  | Binop (op, a, b) -> infer_binop schema op a b
  | Neg a -> (
      match infer schema a with
      | (Domain.DInt | Domain.DFloat) as d -> d
      | (Domain.DStr | Domain.DBool) as d ->
          error "negation applied to %a" Domain.pp d)
  | If (c, a, b) ->
      check_pred schema c;
      let da = infer schema a and db = infer schema b in
      if Domain.equal da db then da
      else error "conditional branches have domains %a and %a" Domain.pp da
          Domain.pp db

and infer_binop schema op a b =
  let da = infer schema a and db = infer schema b in
  match op with
  | Term.Concat -> (
      match (da, db) with
      | Domain.DStr, Domain.DStr -> Domain.DStr
      | _, _ -> error "++ applied to %a and %a" Domain.pp da Domain.pp db)
  | Term.Mod -> (
      match (da, db) with
      | Domain.DInt, Domain.DInt -> Domain.DInt
      | _, _ -> error "%% applied to %a and %a" Domain.pp da Domain.pp db)
  | Term.Add | Term.Sub | Term.Mul | Term.Div -> (
      match (da, db) with
      | Domain.DInt, Domain.DInt -> Domain.DInt
      | Domain.DFloat, Domain.DFloat
      | Domain.DInt, Domain.DFloat
      | Domain.DFloat, Domain.DInt ->
          Domain.DFloat
      | _, _ ->
          error "arithmetic applied to %a and %a" Domain.pp da Domain.pp db)

and check_pred schema = function
  | Term.True | Term.False -> ()
  | Term.Cmp (_, a, b) ->
      let da = infer schema a and db = infer schema b in
      let comparable =
        Domain.equal da db || (Domain.is_numeric da && Domain.is_numeric db)
      in
      if not comparable then
        error "comparison of %a with %a" Domain.pp da Domain.pp db
  | Term.And (p, q) | Term.Or (p, q) ->
      check_pred schema p;
      check_pred schema q
  | Term.Not p -> check_pred schema p

let arith_int op a b =
  match op with
  | Term.Add -> Value.Int (a + b)
  | Term.Sub -> Value.Int (a - b)
  | Term.Mul -> Value.Int (a * b)
  | Term.Div -> if b = 0 then error "division by zero" else Value.Int (a / b)
  | Term.Mod -> if b = 0 then error "modulo by zero" else Value.Int (a mod b)
  | Term.Concat -> error "++ applied to integers"

let arith_float op a b =
  match op with
  | Term.Add -> Value.Float (a +. b)
  | Term.Sub -> Value.Float (a -. b)
  | Term.Mul -> Value.Float (a *. b)
  | Term.Div ->
      if b = 0.0 then error "division by zero" else Value.Float (a /. b)
  | Term.Mod -> error "%% applied to floats"
  | Term.Concat -> error "++ applied to floats"

let rec eval tuple = function
  | Attr i -> (
      match Tuple.attr_opt tuple i with
      | Some v -> v
      | None ->
          error "attribute %%%d out of range for tuple of arity %d" i
            (Tuple.arity tuple))
  | Lit v -> v
  | Binop (op, a, b) -> eval_binop tuple op a b
  | Neg a -> (
      match eval tuple a with
      | Value.Int n -> Value.Int (-n)
      | Value.Float f -> Value.Float (-.f)
      | (Value.Str _ | Value.Bool _) as v ->
          error "negation applied to %a" Value.pp v)
  | If (c, a, b) -> if eval_pred tuple c then eval tuple a else eval tuple b

and eval_binop tuple op a b =
  let va = eval tuple a and vb = eval tuple b in
  match (va, vb) with
  | Value.Int x, Value.Int y -> arith_int op x y
  | Value.Str x, Value.Str y -> (
      match op with
      | Term.Concat -> Value.Str (x ^ y)
      | Term.Add | Term.Sub | Term.Mul | Term.Div | Term.Mod ->
          error "arithmetic applied to strings")
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      arith_float op (Value.as_float va) (Value.as_float vb)
  | _, _ ->
      error "operator applied to %a and %a" Value.pp va Value.pp vb

and eval_pred tuple = function
  | Term.True -> true
  | Term.False -> false
  | Term.Cmp (op, a, b) -> (
      let va = eval tuple a and vb = eval tuple b in
      let c =
        match (va, vb) with
        | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
            Float.compare (Value.as_float va) (Value.as_float vb)
        | _, _ -> (
            try Value.compare_same_domain va vb
            with Value.Incomparable _ ->
              error "comparison of %a with %a" Value.pp va Value.pp vb)
      in
      match op with
      | Term.Eq -> c = 0
      | Term.Ne -> c <> 0
      | Term.Lt -> c < 0
      | Term.Le -> c <= 0
      | Term.Gt -> c > 0
      | Term.Ge -> c >= 0)
  | Term.And (p, q) -> eval_pred tuple p && eval_pred tuple q
  | Term.Or (p, q) -> eval_pred tuple p || eval_pred tuple q
  | Term.Not p -> not (eval_pred tuple p)

let equal = Term.equal_scalar

let binop_symbol = function
  | Term.Add -> "+"
  | Term.Sub -> "-"
  | Term.Mul -> "*"
  | Term.Div -> "/"
  | Term.Mod -> "%"
  | Term.Concat -> "++"

let cmpop_symbol = function
  | Term.Eq -> "="
  | Term.Ne -> "<>"
  | Term.Lt -> "<"
  | Term.Le -> "<="
  | Term.Gt -> ">"
  | Term.Ge -> ">="

let rec pp ppf = function
  | Attr i -> Format.fprintf ppf "%%%d" i
  | Lit v -> Value.pp ppf v
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_symbol op) pp b
  | Neg a -> Format.fprintf ppf "(- %a)" pp a
  | If (c, a, b) ->
      Format.fprintf ppf "(if %a then %a else %a)" pp_pred c pp a pp b

and pp_pred ppf = function
  | Term.True -> Format.pp_print_string ppf "true"
  | Term.False -> Format.pp_print_string ppf "false"
  | Term.Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp a (cmpop_symbol op) pp b
  | Term.And (p, q) -> Format.fprintf ppf "(%a and %a)" pp_pred p pp_pred q
  | Term.Or (p, q) -> Format.fprintf ppf "(%a or %a)" pp_pred p pp_pred q
  | Term.Not p -> Format.fprintf ppf "(not %a)" pp_pred p

let to_string e = Format.asprintf "%a" pp e
