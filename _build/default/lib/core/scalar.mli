(** Arithmetic attribute expressions for the extended projection
    (Definition 3.4).

    An extended projection list [α = (e1, ..., en)] contains expressions
    over the attributes of the operand, "functions from [dom(ℰ)] into a
    basic domain".  This module is that expression language: attribute
    references [%i], literals, arithmetic, string concatenation, and a
    conditional (a function into a basic domain like any other, so within
    the letter of Definition 3.4).  The structure-preserving update lists
    of Definition 4.1 — e.g. [alcperc * 1.1] in Example 4.1 — are written
    in this language.

    Normal projection is the special case where every [ei] is an
    attribute reference (the paper: "the normal projection operator can
    be seen as a special case of the extended operator"). *)

open Mxra_relational

type t = Term.scalar =
  | Attr of int  (** [%i], 1-based attribute reference. *)
  | Lit of Value.t
  | Binop of Term.binop * t * t
  | Neg of t  (** Numeric negation. *)
  | If of Term.pred * t * t
      (** [If (c, e1, e2)]: [e1] where [c] holds, else [e2]. *)

exception Eval_error of string
(** Runtime scalar failure (division by zero; a domain mismatch reached
    at run time).  The type checker rules out mismatches statically for
    checked expressions; division by zero remains dynamic. *)

(** {1 Constructors} *)

val attr : int -> t
val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** {1 Analysis} *)

val attrs_used : t -> int list
(** Sorted, deduplicated attribute indices referenced (including inside
    embedded predicates); the optimizer's footprint analysis. *)

val max_attr : t -> int
(** Largest attribute index referenced; 0 if none. *)

val shift : int -> t -> t
(** [shift k e] adds [k] to every attribute index — reindexing across a
    product boundary when pushing expressions down or up. *)

val rename : (int -> int) -> t -> t
(** Apply an attribute-index substitution. *)

val is_attr : t -> int option
(** [Some i] when the expression is exactly [%i] — the normal-projection
    special case. *)

(** {1 Typing and evaluation} *)

val infer : Schema.t -> t -> Domain.t
(** Result domain over tuples of the given schema.
    @raise Eval_error on an ill-typed expression or out-of-range
    attribute reference. *)

val eval : Tuple.t -> t -> Value.t
(** Evaluate over a tuple.  @raise Eval_error on dynamic failure. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Predicate co-operations}

    Because scalars and predicates are mutually recursive, the predicate
    traversals live here; {!Pred} re-exports them under their natural
    names and is the module client code should use. *)

val rename_pred : (int -> int) -> Term.pred -> Term.pred
val check_pred : Schema.t -> Term.pred -> unit
val eval_pred : Tuple.t -> Term.pred -> bool
val pp_pred : Format.formatter -> Term.pred -> unit
