open Mxra_relational

exception Type_error of string

type env = string -> Schema.t option

let error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let env_of_database db name = Option.map Relation.schema (Database.find_opt name db)

let env_of_list bindings name = List.assoc_opt name bindings

let agg_attribute_name schema kind p =
  let base =
    match Schema.attribute schema p with
    | a -> a.Schema.name
    | exception Invalid_argument _ -> Printf.sprintf "a%d" p
  in
  Printf.sprintf "%s_%s" (String.lowercase_ascii (Aggregate.name kind)) base

(* Wraps scalar/predicate typing failures into Type_error so callers see
   a single static-error exception. *)
let scalar_domain schema e =
  try Scalar.infer schema e
  with Scalar.Eval_error msg -> error "in %a: %s" Scalar.pp e msg

let check_pred schema p =
  try Pred.check schema p
  with Scalar.Eval_error msg -> error "in condition %a: %s" Pred.pp p msg

let rec infer env = function
  | Expr.Rel name -> (
      match env name with
      | Some schema -> schema
      | None -> error "unknown relation %s" name)
  | Expr.Const r -> Relation.schema r
  | Expr.Union (e1, e2) -> infer_compatible env "union" e1 e2
  | Expr.Diff (e1, e2) -> infer_compatible env "diff" e1 e2
  | Expr.Intersect (e1, e2) -> infer_compatible env "intersect" e1 e2
  | Expr.Product (e1, e2) ->
      Schema.concat (infer env e1) (infer env e2)
  | Expr.Select (p, e) ->
      let schema = infer env e in
      check_pred schema p;
      schema
  | Expr.Project (exprs, e) ->
      if exprs = [] then error "projection with empty attribute list";
      let schema = infer env e in
      let attribute expr =
        let domain = scalar_domain schema expr in
        let name =
          match Scalar.is_attr expr with
          | Some i -> (Schema.attribute schema i).Schema.name
          | None -> Format.asprintf "%a" Scalar.pp expr
        in
        { Schema.name; domain }
      in
      Schema.make (List.map attribute exprs)
  | Expr.Join (p, e1, e2) ->
      let schema = Schema.concat (infer env e1) (infer env e2) in
      check_pred schema p;
      schema
  | Expr.Unique e -> infer env e
  | Expr.GroupBy (attrs, aggs, e) ->
      let schema = infer env e in
      let arity = Schema.arity schema in
      let check_index what i =
        if i < 1 || i > arity then
          error "%s attribute %%%d out of range 1..%d" what i arity
      in
      List.iter (check_index "grouping") attrs;
      let sorted = List.sort_uniq Int.compare attrs in
      if List.length sorted <> List.length attrs then
        error "duplicate attribute in grouping list";
      if aggs = [] then error "groupby with no aggregate function";
      let agg_attribute (kind, p) =
        check_index (Aggregate.name kind) p;
        let domain =
          try Aggregate.result_domain kind (Schema.domain schema p)
          with Scalar.Eval_error msg -> error "%s" msg
        in
        { Schema.name = agg_attribute_name schema kind p; domain }
      in
      let key_schema = Schema.project attrs schema in
      Schema.concat key_schema (Schema.make (List.map agg_attribute aggs))

and infer_compatible env op e1 e2 =
  let s1 = infer env e1 and s2 = infer env e2 in
  if Schema.compatible s1 s2 then s1
  else error "%s of incompatible schemas %a and %a" op Schema.pp s1 Schema.pp s2

let infer_db db e = infer (env_of_database db) e

let check env e =
  match infer env e with
  | schema -> Ok schema
  | exception Type_error msg -> Error msg
