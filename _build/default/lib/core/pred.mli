(** Selection conditions [φ] (Definition 3.1).

    A selection condition is "a function from [dom(ℰ)] into the boolean
    domain", defined on individual tuples.  Conditions compare scalar
    expressions and close under the boolean connectives. *)

open Mxra_relational

type t = Term.pred =
  | True
  | False
  | Cmp of Term.cmpop * Scalar.t * Scalar.t
  | And of t * t
  | Or of t * t
  | Not of t

(** {1 Constructors} *)

val eq : Scalar.t -> Scalar.t -> t
val ne : Scalar.t -> Scalar.t -> t
val lt : Scalar.t -> Scalar.t -> t
val le : Scalar.t -> Scalar.t -> t
val gt : Scalar.t -> Scalar.t -> t
val ge : Scalar.t -> Scalar.t -> t
val conj : t list -> t
(** Conjunction of a list; [True] for the empty list. *)

val disj : t list -> t
(** Disjunction of a list; [False] for the empty list. *)

(** {1 Analysis} *)

val attrs_used : t -> int list
(** Sorted, deduplicated attribute indices referenced. *)

val max_attr : t -> int

val shift : int -> t -> t
val rename : (int -> int) -> t -> t

val conjuncts : t -> t list
(** Flatten nested [And]s: [conj (conjuncts p)] is logically [p].  Basis
    of the selection-cascade rewrite (σ_{p∧q} = σ_p ∘ σ_q). *)

val equi_join_pair : left_arity:int -> t -> (int * int) option
(** [Some (i, j)] when the condition is exactly [%i = %j] with [i] on
    the left operand ([i <= left_arity]) and [j] on the right
    ([j > left_arity]); [j] is returned 1-based in the combined schema.
    Drives hash-join detection in the planner. *)

(** {1 Typing and evaluation} *)

val check : Schema.t -> t -> unit
(** Verify the condition is boolean-typed over the schema: both sides of
    every comparison have the same domain and attribute references are in
    range.  @raise Scalar.Eval_error when not. *)

val eval : Tuple.t -> t -> bool
(** @raise Scalar.Eval_error on dynamic failure. *)

val simplify : t -> t
(** Constant folding and boolean simplification; preserves {!eval} on
    all tuples on which the original evaluates. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
