(** Multi-set aggregate functions (Definition 3.3).

    An aggregate function computes a value over a specified attribute
    [p] of a multi-set expression:

    - [CNT_p E = Σ_{x ∈ dom(ℰ)} E(x)] — multiplicities counted; [p] is a
      dummy parameter kept for syntactic uniformity;
    - [SUM_p E = Σ_{x ∈ dom(ℰ)} E(x) · x.p] — numeric [p];
    - [AVG_p E = SUM_p E / CNT_p E] — numeric [p];
    - [MIN_p E], [MAX_p E] — over the support [{x | E(x) > 0}].

    AVG, MIN and MAX are {e partial}: they are undefined on the empty
    multi-set (the paper notes this explicitly), surfaced here as
    {!Undefined}.  CNT and SUM of an empty bag are 0.

    Aggregation happens over bags of {e values} (the [p]-column of a
    relation with multiplicities intact); the groupby operator of
    Definition 3.4 builds those bags per group. *)

open Mxra_relational

type kind =
  | Cnt
  | Sum
  | Avg
  | Min
  | Max
  | Var  (** Population variance — a "statistical aggregate function",
             the extension family Definition 3.3's remark invites. *)
  | Stddev  (** Square root of {!Var}. *)

exception Undefined of kind
(** AVG/MIN/MAX applied to an empty multi-set. *)

val all : kind list
(** The paper's five functions, in definition order. *)

val all_extended : kind list
(** {!all} plus the statistical extensions VAR and STDDEV. *)

val name : kind -> string
(** [CNT], [SUM], [AVG], [MIN], [MAX], [VAR], [STDDEV]. *)

val of_name : string -> kind option
(** Case-insensitive inverse of {!name}; also accepts SQL spellings
    [COUNT] and [AVERAGE]. *)

val result_domain : kind -> Domain.t -> Domain.t
(** [result_domain f d] is [ran(f)] when aggregating an attribute of
    domain [d]: CNT is always [int]; SUM preserves [d]; AVG is always
    [float]; MIN/MAX preserve [d].
    @raise Scalar.Eval_error if [f] requires a numeric domain and [d] is
    not numeric (SUM, AVG), or if MIN/MAX is applied to [bool] (the
    boolean domain is unordered in the model). *)

val applicable : kind -> Domain.t -> bool
(** Whether {!result_domain} would succeed. *)

(** {1 Computation}

    The input is the counted [p]-column: a list of [(value, multiplicity)]
    pairs with positive multiplicities.  Order is irrelevant. *)

val compute : kind -> (Value.t * int) list -> Value.t
(** @raise Undefined on an empty input for AVG/MIN/MAX.
    @raise Scalar.Eval_error on non-numeric input to SUM/AVG. *)

val compute_for : Domain.t -> kind -> (Value.t * int) list -> Value.t
(** Like {!compute}, but the attribute domain is supplied so that the
    result lands in [result_domain kind domain] even on the empty bag:
    the empty SUM over a [float] column is [Float 0.], not [Int 0].
    This is the variant evaluators must use. *)

val cnt : (Value.t * int) list -> int
val sum : (Value.t * int) list -> Value.t
val avg : (Value.t * int) list -> float
(** @raise Undefined on empty input. *)

val var : (Value.t * int) list -> float
(** Population variance, multiplicity-weighted.
    @raise Undefined on empty input. *)

val min_v : (Value.t * int) list -> Value.t
(** @raise Undefined on empty input. *)

val max_v : (Value.t * int) list -> Value.t
(** @raise Undefined on empty input. *)

val pp : Format.formatter -> kind -> unit
