lib/core/pred.ml: Format Int List Mxra_relational Scalar Term Tuple Value
