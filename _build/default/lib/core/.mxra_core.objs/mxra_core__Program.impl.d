lib/core/program.ml: Database Format List Mxra_relational Statement
