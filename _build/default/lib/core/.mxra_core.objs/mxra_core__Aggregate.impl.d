lib/core/aggregate.ml: Domain Format List Mxra_relational Scalar String Value
