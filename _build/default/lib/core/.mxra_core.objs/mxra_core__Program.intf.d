lib/core/program.mli: Database Format Mxra_relational Relation Statement
