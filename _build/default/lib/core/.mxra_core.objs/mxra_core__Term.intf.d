lib/core/term.mli: Mxra_relational Value
