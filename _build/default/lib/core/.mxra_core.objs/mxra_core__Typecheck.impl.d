lib/core/typecheck.ml: Aggregate Database Expr Format Int List Mxra_relational Option Pred Printf Relation Scalar Schema String
