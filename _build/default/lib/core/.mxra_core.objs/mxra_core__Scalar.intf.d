lib/core/scalar.mli: Domain Format Mxra_relational Schema Term Tuple Value
