lib/core/statement.mli: Database Expr Format Mxra_relational Relation Scalar
