lib/core/equiv.mli: Database Expr Mxra_relational Typecheck
