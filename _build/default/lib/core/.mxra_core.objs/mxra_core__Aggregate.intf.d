lib/core/aggregate.mli: Domain Format Mxra_relational Value
