lib/core/equiv.ml: Eval Expr List Mxra_relational Pred Relation Scalar Schema Typecheck
