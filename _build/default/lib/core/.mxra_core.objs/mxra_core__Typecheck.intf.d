lib/core/typecheck.mli: Aggregate Database Expr Mxra_relational Schema
