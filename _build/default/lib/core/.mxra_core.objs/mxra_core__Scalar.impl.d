lib/core/scalar.ml: Domain Float Format Int List Mxra_relational Schema Term Tuple Value
