lib/core/transaction.ml: Aggregate Database List Mxra_relational Printf Program Relation Scalar Statement Typecheck
