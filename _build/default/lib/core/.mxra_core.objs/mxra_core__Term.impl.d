lib/core/term.ml: Mxra_relational Value
