lib/core/expr.mli: Aggregate Format Mxra_relational Pred Relation Scalar
