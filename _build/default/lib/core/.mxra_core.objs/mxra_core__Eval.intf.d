lib/core/eval.mli: Aggregate Database Expr Mxra_relational Pred Relation Scalar
