lib/core/statement.ml: Database Domain Eval Expr Format List Mxra_relational Relation Scalar Schema Typecheck
