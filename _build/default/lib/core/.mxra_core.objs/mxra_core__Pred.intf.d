lib/core/pred.mli: Format Mxra_relational Scalar Schema Term Tuple
