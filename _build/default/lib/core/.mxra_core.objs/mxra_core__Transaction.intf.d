lib/core/transaction.mli: Database Mxra_relational Program Relation
