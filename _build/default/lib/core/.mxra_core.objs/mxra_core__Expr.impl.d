lib/core/expr.ml: Aggregate Format List Mxra_relational Pred Relation Scalar Schema String
