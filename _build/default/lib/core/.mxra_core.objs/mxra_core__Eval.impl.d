lib/core/eval.ml: Aggregate Database Expr Format List Map Mxra_relational Pred Relation Scalar Schema Tuple Typecheck
