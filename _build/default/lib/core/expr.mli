(** Multi-set extended relational algebra expressions
    (Definitions 3.1, 3.2 and 3.4).

    The grammar covers the three layers of the paper:

    - {e basic} (Definition 3.1): database relations, [⊎] (union), [−]
      (difference), [×] (product), [σ_φ] (selection), [π_α] (projection);
    - {e standard} (Definition 3.2): [∩] (intersection) and [⋈_φ] (join)
      — derivable by Theorem 3.1 but first-class, as in the paper;
    - {e extended} (Definition 3.4): extended projection with arithmetic
      expressions, duplicate elimination [δ], and grouping [Γ_{α,f,p}].

    Projection is represented once, in its extended form ([Project] with
    a list of scalar expressions); the normal projection is "a special
    case of the extended operator" (Definition 3.4) built by
    {!project_attrs}, and {!as_plain_projection} recovers the special
    case.  [Const] embeds a literal relation, so algebra values are also
    expressions; the reference evaluator needs this to state equivalences
    over already-computed operands.

    Grouping generalises the paper's single [(f, p)] pair to a non-empty
    list of pairs (the SQL front-end needs several aggregates per group);
    a singleton list is exactly Definition 3.4, and the general form is
    expressible by joining singleton groupbys on the grouping
    attributes. *)

open Mxra_relational

type t =
  | Rel of string  (** A database relation, addressed by name. *)
  | Const of Relation.t  (** A literal multi-set relation. *)
  | Union of t * t  (** [E1 ⊎ E2]: multiplicities add. *)
  | Diff of t * t  (** [E1 − E2]: monus, [max 0 (E1(x) − E2(x))]. *)
  | Product of t * t  (** [E1 × E2]: multiplicities multiply. *)
  | Select of Pred.t * t  (** [σ_φ E]. *)
  | Project of Scalar.t list * t  (** [π_α E], extended; non-empty [α]. *)
  | Intersect of t * t  (** [E1 ∩ E2]: pointwise minimum. *)
  | Join of Pred.t * t * t  (** [E1 ⋈_φ E2 = σ_φ (E1 × E2)]. *)
  | Unique of t  (** [δ E]: duplicate elimination. *)
  | GroupBy of int list * (Aggregate.kind * int) list * t
      (** [Γ_{α, (f1,p1)...(fk,pk)} E]; [α] may be empty (aggregate over
          all tuples, yielding a single tuple). *)

(** {1 Convenience constructors} *)

val rel : string -> t
val const : Relation.t -> t
val union : t -> t -> t
val diff : t -> t -> t
val product : t -> t -> t
val select : Pred.t -> t -> t
val project : Scalar.t list -> t -> t
val project_attrs : int list -> t -> t
(** Normal projection [π_{(%i1,...,%in)}]. *)

val intersect : t -> t -> t
val join : Pred.t -> t -> t -> t
val unique : t -> t
val group_by : int list -> (Aggregate.kind * int) list -> t -> t
val aggregate : Aggregate.kind -> int -> t -> t
(** [Γ] with empty [α]: one aggregate over the whole multi-set. *)

(** {1 Structure} *)

val as_plain_projection : Scalar.t list -> int list option
(** [Some [i1;...;in]] when every expression in the list is a bare
    attribute reference — the normal-projection special case. *)

val size : t -> int
(** Number of operator nodes (leaves count 1). *)

val depth : t -> int

val relations : t -> string list
(** Sorted, deduplicated names of database relations mentioned. *)

val map_children : (t -> t) -> t -> t
(** Rebuild the node with the function applied to immediate sub-
    expressions; leaves are returned unchanged.  The optimizer's rewrite
    driver is built on this. *)

val equal : t -> t -> bool
(** Structural (syntactic) equality — not semantic equivalence. *)

val pp : Format.formatter -> t -> unit
(** Algebra-style rendering, e.g.
    [project[%1](select[%6 = 'NL'](join[%2 = %4](beer, brewery)))]. *)

val to_string : t -> string
