open Mxra_relational

type t = Term.pred =
  | True
  | False
  | Cmp of Term.cmpop * Scalar.t * Scalar.t
  | And of t * t
  | Or of t * t
  | Not of t

let eq a b = Cmp (Term.Eq, a, b)
let ne a b = Cmp (Term.Ne, a, b)
let lt a b = Cmp (Term.Lt, a, b)
let le a b = Cmp (Term.Le, a, b)
let gt a b = Cmp (Term.Gt, a, b)
let ge a b = Cmp (Term.Ge, a, b)

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let rec collect acc = function
  | True | False -> acc
  | Cmp (_, a, b) ->
      List.rev_append (Scalar.attrs_used a)
        (List.rev_append (Scalar.attrs_used b) acc)
  | And (p, q) | Or (p, q) -> collect (collect acc p) q
  | Not p -> collect acc p

let attrs_used p = List.sort_uniq Int.compare (collect [] p)
let max_attr p = List.fold_left max 0 (collect [] p)
let rename subst p = Scalar.rename_pred subst p
let shift k p = rename (fun i -> i + k) p

let rec conjuncts = function
  | And (p, q) -> conjuncts p @ conjuncts q
  | (True | False | Cmp _ | Or _ | Not _) as p -> [ p ]

let equi_join_pair ~left_arity = function
  | Cmp (Term.Eq, Scalar.Attr i, Scalar.Attr j) ->
      if i <= left_arity && j > left_arity then Some (i, j)
      else if j <= left_arity && i > left_arity then Some (j, i)
      else None
  | True | False | Cmp _ | And _ | Or _ | Not _ -> None

let check schema p = Scalar.check_pred schema p
let eval tuple p = Scalar.eval_pred tuple p

(* Folding only rewrites by boolean identities, so evaluation behaviour
   (including which subterms can raise on division by zero) is preserved
   wherever the original is defined: we never *introduce* evaluation of a
   subterm the original would have skipped. *)
let rec simplify = function
  | True -> True
  | False -> False
  | Cmp (op, a, b) as p -> (
      match (a, b) with
      | Scalar.Lit v1, Scalar.Lit v2 -> (
          match
            Scalar.eval Tuple.unit (Scalar.If (Cmp (op, Lit v1, Lit v2),
                                               Scalar.bool true,
                                               Scalar.bool false))
          with
          | Value.Bool true -> True
          | Value.Bool false -> False
          | Value.Int _ | Value.Float _ | Value.Str _ -> p
          | exception Scalar.Eval_error _ -> p)
      | _, _ -> p)
  | And (p, q) -> (
      match (simplify p, simplify q) with
      | True, q' -> q'
      | p', True -> p'
      | False, _ | _, False -> False
      | p', q' -> And (p', q'))
  | Or (p, q) -> (
      match (simplify p, simplify q) with
      | False, q' -> q'
      | p', False -> p'
      | True, _ | _, True -> True
      | p', q' -> Or (p', q'))
  | Not p -> (
      match simplify p with
      | True -> False
      | False -> True
      | Not p' -> p'
      | (Cmp _ | And _ | Or _) as p' -> Not p')

let equal = Term.equal_pred
let pp = Scalar.pp_pred
let to_string p = Format.asprintf "%a" pp p
