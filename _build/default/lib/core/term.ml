open Mxra_relational

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat

type cmpop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type scalar =
  | Attr of int
  | Lit of Value.t
  | Binop of binop * scalar * scalar
  | Neg of scalar
  | If of pred * scalar * scalar

and pred =
  | True
  | False
  | Cmp of cmpop * scalar * scalar
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let rec equal_scalar s1 s2 =
  match (s1, s2) with
  | Attr i, Attr j -> i = j
  | Lit v1, Lit v2 -> Value.equal v1 v2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      o1 = o2 && equal_scalar a1 a2 && equal_scalar b1 b2
  | Neg a, Neg b -> equal_scalar a b
  | If (c1, a1, b1), If (c2, a2, b2) ->
      equal_pred c1 c2 && equal_scalar a1 a2 && equal_scalar b1 b2
  | (Attr _ | Lit _ | Binop _ | Neg _ | If _), _ -> false

and equal_pred p1 p2 =
  match (p1, p2) with
  | True, True | False, False -> true
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      o1 = o2 && equal_scalar a1 a2 && equal_scalar b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal_pred a1 a2 && equal_pred b1 b2
  | Not a, Not b -> equal_pred a b
  | (True | False | Cmp _ | And _ | Or _ | Not _), _ -> false
