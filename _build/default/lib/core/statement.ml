open Mxra_relational

type t =
  | Insert of string * Expr.t
  | Delete of string * Expr.t
  | Update of string * Expr.t * Scalar.t list
  | Assign of string * Expr.t
  | Query of Expr.t

exception Exec_error of string

let error fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

let target_relation db name =
  match Database.find_opt name db with
  | Some r -> r
  | None -> error "unknown relation %s" name

let require_same_schema op name target value =
  if not (Schema.compatible (Relation.schema target) (Relation.schema value))
  then
    error "%s(%s, E): E has schema %a, %s has schema %a" op name Schema.pp
      (Relation.schema value) name Schema.pp (Relation.schema target)

(* update(R, E, α) requires π_α structure-preserving: the projected
   schema must be compatible with R's schema. *)
let check_update_list db name exprs =
  let schema = Relation.schema (target_relation db name) in
  if List.length exprs <> Schema.arity schema then
    error "update(%s): attribute expression list has length %d, schema %a"
      name (List.length exprs) Schema.pp schema;
  List.iteri
    (fun i e ->
      let d =
        try Scalar.infer schema e
        with Scalar.Eval_error msg -> error "update(%s): %s" name msg
      in
      let expected = Schema.domain schema (i + 1) in
      if not (Domain.equal d expected) then
        error
          "update(%s): expression %a for attribute %%%d has domain %a, \
           expected %a"
          name Scalar.pp e (i + 1) Domain.pp d Domain.pp expected)
    exprs

let exec db = function
  | Insert (name, e) ->
      let target = target_relation db name in
      let value = Eval.eval db e in
      require_same_schema "insert" name target value;
      (Database.set name (Eval.union target value) db, None)
  | Delete (name, e) ->
      let target = target_relation db name in
      let value = Eval.eval db e in
      require_same_schema "delete" name target value;
      (Database.set name (Eval.diff target value) db, None)
  | Update (name, e, exprs) ->
      let target = target_relation db name in
      let value = Eval.eval db e in
      require_same_schema "update" name target value;
      check_update_list db name exprs;
      (* R ← (R − E) ⊎ π_α(R ∩ E) *)
      let untouched = Eval.diff target value in
      let touched = Eval.intersect target value in
      let modified =
        (* The projected bag keeps R's schema: structure preserving. *)
        Relation.of_bag_unchecked (Relation.schema target)
          (Relation.bag (Eval.project exprs touched))
      in
      (Database.set name (Eval.union untouched modified) db, None)
  | Assign (name, e) ->
      let value = Eval.eval db e in
      (Database.assign_temporary name value db, None)
  | Query e -> (db, Some (Eval.eval db e))

let infer db = function
  | Insert (name, e) | Delete (name, e) ->
      let target = target_relation db name in
      let schema = Typecheck.infer_db db e in
      if not (Schema.compatible (Relation.schema target) schema) then
        error "statement on %s: schema mismatch" name
  | Update (name, e, exprs) ->
      let target = target_relation db name in
      let schema = Typecheck.infer_db db e in
      if not (Schema.compatible (Relation.schema target) schema) then
        error "update(%s): schema mismatch" name;
      check_update_list db name exprs
  | Assign (_, e) | Query e -> ignore (Typecheck.infer_db db e)

let pp ppf = function
  | Insert (name, e) ->
      Format.fprintf ppf "insert(%s,@ @[%a@])" name Expr.pp e
  | Delete (name, e) ->
      Format.fprintf ppf "delete(%s,@ @[%a@])" name Expr.pp e
  | Update (name, e, exprs) ->
      Format.fprintf ppf "update(%s,@ @[%a@],@ [@[%a@]])" name Expr.pp e
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Scalar.pp)
        exprs
  | Assign (name, e) -> Format.fprintf ppf "%s := @[%a@]" name Expr.pp e
  | Query e -> Format.fprintf ppf "?@[%a@]" Expr.pp e

let to_string s = Format.asprintf "%a" pp s
