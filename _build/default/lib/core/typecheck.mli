(** Schema inference for algebra expressions.

    The paper assigns every expression a schema (its "type"): operands of
    [⊎], [−], [∩] share a schema [ℰ]; [×] and [⋈] produce [ℰ ⊕ ℰ'];
    [π_α] produces [π_α ℰ]; [Γ_{α,f,p}] produces [π_α ℰ ⊕ ran(f(x.p))].
    This module computes that schema and rejects ill-formed expressions:
    union-incompatible operands, out-of-range or ill-typed attribute
    expressions, non-boolean conditions, aggregates on inadmissible
    domains, duplicate grouping attributes.

    The checker is {e static}: it never looks at relation contents, only
    at schemas, so a checked expression cannot fail with a typing error
    at evaluation time (division by zero and partial aggregates remain
    dynamic, as in the paper). *)

open Mxra_relational

exception Type_error of string

type env = string -> Schema.t option
(** Resolution of database relation names to schemas. *)

val env_of_database : Database.t -> env
val env_of_list : (string * Schema.t) list -> env

val infer : env -> Expr.t -> Schema.t
(** Schema of the expression.  @raise Type_error when ill-formed. *)

val infer_db : Database.t -> Expr.t -> Schema.t
(** [infer] against a database's catalog (temporaries visible). *)

val check : env -> Expr.t -> (Schema.t, string) result
(** Exception-free variant. *)

val agg_attribute_name : Schema.t -> Aggregate.kind -> int -> string
(** Display name for an aggregate output column, e.g. [avg_alcperc];
    exposed so the SQL front-end and planner agree on names. *)
