(** Expression equivalences (Section 3.3).

    "Expression equivalence is important for query optimization.  The
    equivalences in the normal set relational algebra generally hold for
    the multi-set relational algebra as well."  This module states the
    paper's equivalences as syntactic rewrites and provides a semantic
    equivalence check used by the property-test suite to verify every
    rewrite (both the paper's theorems and the extra classical rules the
    optimizer uses).

    Each [rewrite_*] function maps an expression matching the left-hand
    side of its law to the right-hand side and returns [None] when the
    root does not match; the transformation is purely syntactic and —
    by the corresponding theorem — semantics-preserving.  Rules that
    must reindex attributes across a product boundary additionally need
    operand arities and take a {!Typecheck.env}; they return [None] when
    an operand's schema cannot be inferred. *)

open Mxra_relational

(** {1 Semantic equivalence} *)

val equivalent_on : Database.t -> Expr.t -> Expr.t -> bool
(** Both sides evaluate (under {!Eval}) to equal relations on the given
    database state.  This is equivalence {e at one state}; the laws claim
    it at every state, which the test suite approximates over generated
    states. *)

(** {1 Theorem 3.1 — intersection and join are derived operators} *)

val derive_intersect : Expr.t -> Expr.t option
(** [E1 ∩ E2  ⇒  E1 − (E1 − E2)]. *)

val underive_intersect : Expr.t -> Expr.t option
(** [E1 − (E1 − E2)  ⇒  E1 ∩ E2] — the converse direction, needing
    syntactic equality of the two occurrences of [E1]. *)

val derive_join : Expr.t -> Expr.t option
(** [E1 ⋈_φ E2  ⇒  σ_φ(E1 × E2)]. *)

val underive_join : Expr.t -> Expr.t option
(** [σ_φ(E1 × E2)  ⇒  E1 ⋈_φ E2] — the join-introduction rewrite the
    optimizer prefers. *)

(** {1 Theorem 3.2 — distribution over union} *)

val distribute_select_union : Expr.t -> Expr.t option
(** [σ_φ(E1 ⊎ E2)  ⇒  σ_φ E1 ⊎ σ_φ E2]. *)

val factor_select_union : Expr.t -> Expr.t option
(** [σ_φ E1 ⊎ σ_φ E2  ⇒  σ_φ(E1 ⊎ E2)] (same [φ] both sides). *)

val distribute_project_union : Expr.t -> Expr.t option
(** [π_α(E1 ⊎ E2)  ⇒  π_α E1 ⊎ π_α E2]. *)

val factor_project_union : Expr.t -> Expr.t option

val unique_union : Expr.t -> Expr.t option
(** The paper's non-distribution relation for [δ]:
    [δ(E1 ⊎ E2)  ⇒  δ(δE1 ⊎ δE2)].  (Plain distribution
    [δ(E1 ⊎ E2) = δE1 ⊎ δE2] is {e false}; a test exhibits the
    counterexample.) *)

(** {1 Theorem 3.3 — associativity} *)

val assoc_left_product : Expr.t -> Expr.t option
(** [E1 × (E2 × E3)  ⇒  (E1 × E2) × E3]. *)

val assoc_right_product : Expr.t -> Expr.t option

val assoc_left_union : Expr.t -> Expr.t option
val assoc_right_union : Expr.t -> Expr.t option
val assoc_left_intersect : Expr.t -> Expr.t option
val assoc_right_intersect : Expr.t -> Expr.t option

val assoc_left_join : Typecheck.env -> Expr.t -> Expr.t option
(** [E1 ⋈_φ1 (E2 ⋈_φ2 E3)  ⇒  (E1 ⋈_φ1|12 E2) ⋈_{φ1|rest ∧ φ2↑} E3]:
    the inner condition [φ2] is reindexed up by [arity E1]; conjuncts of
    [φ1] whose footprint lies within [E1 ⊕ E2] become the new inner
    condition, the rest join the outer one.  Theorem 3.3 states the law
    for conditions on the appropriate operand pairs; splitting by
    footprint realises that side condition. *)

val assoc_right_join : Typecheck.env -> Expr.t -> Expr.t option
(** [(E1 ⋈_φ1 E2) ⋈_φ2 E3  ⇒  E1 ⋈_{φ1 ∧ φ2|keep} (E2 ⋈_{φ2|23↓} E3)]. *)

(** {1 Further classical equivalences (bag-valid)}

    Not spelled out in the paper ("a complete list is omitted for
    reasons of brevity") but all in the set-algebra canon it appeals to,
    and all verified bag-valid by the property suite. *)

val commute_union : Expr.t -> Expr.t option
val commute_intersect : Expr.t -> Expr.t option

val commute_product : Typecheck.env -> Expr.t -> Expr.t option
(** [E1 × E2  ⇒  π_perm(E2 × E1)] — commutation up to the column
    permutation, realised by an explicit projection. *)

val commute_join : Typecheck.env -> Expr.t -> Expr.t option
(** [E1 ⋈_φ E2  ⇒  π_perm(E2 ⋈_φσ E1)] with [φ] reindexed by the swap. *)

val cascade_select : Expr.t -> Expr.t option
(** [σ_{p ∧ q} E  ⇒  σ_p(σ_q E)]. *)

val merge_select : Expr.t -> Expr.t option
(** [σ_p(σ_q E)  ⇒  σ_{p ∧ q} E]. *)

val commute_select : Expr.t -> Expr.t option
(** [σ_p(σ_q E)  ⇒  σ_q(σ_p E)]. *)

val select_into_join : Expr.t -> Expr.t option
(** [σ_p(E1 ⋈_q E2)  ⇒  E1 ⋈_{q ∧ p} E2]. *)

val distribute_select_diff : Expr.t -> Expr.t option
(** [σ_φ(E1 − E2)  ⇒  σ_φ E1 − σ_φ E2]; bag-valid since monus is
    pointwise. *)

val distribute_select_intersect : Expr.t -> Expr.t option

val idempotent_unique : Expr.t -> Expr.t option
(** [δ(δE)  ⇒  δE]. *)

val commute_unique_select : Expr.t -> Expr.t option
(** [δ(σ_φ E)  ⇒  σ_φ(δE)] — both select the support. *)

val distribute_unique_product : Expr.t -> Expr.t option
(** [δ(E1 × E2)  ⇒  δE1 × δE2]: a product's multiplicity is positive
    iff both factors' are — so δ distributes over ×, although it does
    {e not} over ⊎ or −.  Pushing δ below a product shrinks the build
    sides, which is why the optimizer wants this one. *)

val distribute_unique_intersect : Expr.t -> Expr.t option
(** [δ(E1 ∩ E2)  ⇒  δE1 ∩ δE2] (min is positive iff both are). *)

val distribute_unique_join : Expr.t -> Expr.t option
(** [δ(E1 ⋈_φ E2)  ⇒  δE1 ⋈_φ δE2] — by Theorem 3.1 and the σ and ×
    cases combined. *)

(** {1 Rule table} *)

type rule = {
  rule_name : string;
  apply : Typecheck.env -> Expr.t -> Expr.t option;
      (** Schema-free rules ignore the environment. *)
}

val all_rules : rule list
(** Every rewrite above, named; the property suite iterates this table
    to verify each rule semantics-preserving on random inputs, and the
    optimizer draws its rule set from it. *)
