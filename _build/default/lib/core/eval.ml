open Mxra_relational
module Bag = Relation.Bag

(* Result schemas are obtained from the type checker on a per-node basis
   so that evaluation and static typing can never disagree on schemas. *)
let node_schema node sub_schemas =
  let consts = List.map (fun s -> Expr.Const (Relation.empty s)) sub_schemas in
  let rebuilt =
    match (node, consts) with
    | Expr.Union _, [ a; b ] -> Expr.Union (a, b)
    | Expr.Diff _, [ a; b ] -> Expr.Diff (a, b)
    | Expr.Product _, [ a; b ] -> Expr.Product (a, b)
    | Expr.Intersect _, [ a; b ] -> Expr.Intersect (a, b)
    | Expr.Select (p, _), [ a ] -> Expr.Select (p, a)
    | Expr.Project (exprs, _), [ a ] -> Expr.Project (exprs, a)
    | Expr.Join (p, _, _), [ a; b ] -> Expr.Join (p, a, b)
    | Expr.Unique _, [ a ] -> Expr.Unique a
    | Expr.GroupBy (attrs, aggs, _), [ a ] -> Expr.GroupBy (attrs, aggs, a)
    | ( ( Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _
        | Expr.Product _ | Expr.Intersect _ | Expr.Select _ | Expr.Project _
        | Expr.Join _ | Expr.Unique _ | Expr.GroupBy _ ),
        _ ) ->
        invalid_arg "Eval.node_schema: arity mismatch"
  in
  Typecheck.infer (fun _ -> None) rebuilt

let require_compatible op r1 r2 =
  if not (Schema.compatible (Relation.schema r1) (Relation.schema r2)) then
    raise
      (Typecheck.Type_error
         (Format.asprintf "%s of incompatible schemas %a and %a" op Schema.pp
            (Relation.schema r1) Schema.pp (Relation.schema r2)))

(* (E1 ⊎ E2)(x) = E1(x) + E2(x) *)
let union r1 r2 =
  require_compatible "union" r1 r2;
  Relation.of_bag_unchecked (Relation.schema r1)
    (Bag.sum (Relation.bag r1) (Relation.bag r2))

(* (E1 − E2)(x) = max(0, E1(x) − E2(x)) *)
let diff r1 r2 =
  require_compatible "diff" r1 r2;
  Relation.of_bag_unchecked (Relation.schema r1)
    (Bag.diff (Relation.bag r1) (Relation.bag r2))

(* (E1 ∩ E2)(x) = min(E1(x), E2(x)) *)
let intersect r1 r2 =
  require_compatible "intersect" r1 r2;
  Relation.of_bag_unchecked (Relation.schema r1)
    (Bag.inter (Relation.bag r1) (Relation.bag r2))

(* (E1 × E2)(x1 ⊕ x2) = E1(x1) · E2(x2) *)
let product r1 r2 =
  let schema = Schema.concat (Relation.schema r1) (Relation.schema r2) in
  let bag =
    Bag.fold
      (fun t1 n1 acc ->
        Bag.fold
          (fun t2 n2 acc ->
            Bag.add ~count:(n1 * n2) (Tuple.concat t1 t2) acc)
          (Relation.bag r2) acc)
      (Relation.bag r1) Bag.empty
  in
  Relation.of_bag_unchecked schema bag

(* (σ_φ E)(x) = E(x) if φ(x), else 0 *)
let select p r =
  Relation.of_bag_unchecked (Relation.schema r)
    (Bag.filter (fun t -> Pred.eval t p) (Relation.bag r))

(* (π_α E)(y) = Σ_{π_α(x) = y} E(x): images accumulate, no duplicate
   elimination. *)
let project exprs r =
  let schema =
    node_schema
      (Expr.Project (exprs, Expr.Const r))
      [ Relation.schema r ]
  in
  let image t = Tuple.of_list (List.map (Scalar.eval t) exprs) in
  Relation.of_bag_unchecked schema (Bag.map image (Relation.bag r))

(* E1 ⋈_φ E2 = σ_φ(E1 × E2); computed fused, same multiplicities. *)
let join p r1 r2 =
  let schema = Schema.concat (Relation.schema r1) (Relation.schema r2) in
  let bag =
    Bag.fold
      (fun t1 n1 acc ->
        Bag.fold
          (fun t2 n2 acc ->
            let t = Tuple.concat t1 t2 in
            if Pred.eval t p then Bag.add ~count:(n1 * n2) t acc else acc)
          (Relation.bag r2) acc)
      (Relation.bag r1) Bag.empty
  in
  Relation.of_bag_unchecked schema bag

(* (δ E)(x) = 1 if E(x) > 0, else 0 *)
let unique r =
  Relation.of_bag_unchecked (Relation.schema r)
    (Bag.distinct (Relation.bag r))

module Groups = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

(* Γ_{α,(f1,p1)...(fk,pk)} E: group by equality on π_α, compute each
   aggregate over the (value, multiplicity) column of its attribute.
   With α = (), the result is the single tuple of aggregates over all of
   E (one tuple even when E is empty, per Definition 3.4). *)
let group_by attrs aggs r =
  let schema = Relation.schema r in
  let out_schema =
    node_schema (Expr.GroupBy (attrs, aggs, Expr.Const r)) [ schema ]
  in
  let columns_of_group members =
    List.map
      (fun (_, p) ->
        List.map (fun (t, n) -> (Tuple.attr t p, n)) members)
      aggs
  in
  let row key members =
    let values =
      List.map2
        (fun (kind, p) column ->
          Aggregate.compute_for (Schema.domain schema p) kind column)
        aggs
        (columns_of_group members)
    in
    Tuple.concat key (Tuple.of_list values)
  in
  if attrs = [] then
    let members = Relation.to_counted_list r in
    Relation.of_bag_unchecked out_schema
      (Bag.singleton (row Tuple.unit members))
  else
    let groups =
      Bag.fold
        (fun t n acc ->
          let key = Tuple.project attrs t in
          let upd = function
            | None -> Some [ (t, n) ]
            | Some members -> Some ((t, n) :: members)
          in
          Groups.update key upd acc)
        (Relation.bag r) Groups.empty
    in
    let bag =
      Groups.fold
        (fun key members acc -> Bag.add (row key members) acc)
        groups Bag.empty
    in
    Relation.of_bag_unchecked out_schema bag

let rec eval db = function
  | Expr.Rel name -> Database.find name db
  | Expr.Const r -> r
  | Expr.Union (e1, e2) -> union (eval db e1) (eval db e2)
  | Expr.Diff (e1, e2) -> diff (eval db e1) (eval db e2)
  | Expr.Product (e1, e2) -> product (eval db e1) (eval db e2)
  | Expr.Select (p, e) -> select p (eval db e)
  | Expr.Project (exprs, e) -> project exprs (eval db e)
  | Expr.Intersect (e1, e2) -> intersect (eval db e1) (eval db e2)
  | Expr.Join (p, e1, e2) -> join p (eval db e1) (eval db e2)
  | Expr.Unique e -> unique (eval db e)
  | Expr.GroupBy (attrs, aggs, e) -> group_by attrs aggs (eval db e)

let eval_closed e = eval Database.empty e
