open Mxra_relational

type t = Statement.t list

let exec db program =
  let step (db, outputs) stmt =
    let db', output = Statement.exec db stmt in
    let outputs' =
      match output with None -> outputs | Some r -> r :: outputs
    in
    (db', outputs')
  in
  let db', outputs = List.fold_left step (db, []) program in
  (db', List.rev outputs)

(* Static checking threads assignments by executing them against a
   schema-equivalent database whose relations are all emptied, so the
   cost is independent of the data. *)
let infer db program =
  let emptied =
    List.fold_left
      (fun acc name ->
        Database.create name (Database.schema_of name db) acc)
      Database.empty
      (Database.persistent_names db)
  in
  let step shadow stmt =
    Statement.infer shadow stmt;
    match stmt with
    | Statement.Assign (_, _) -> fst (Statement.exec shadow stmt)
    | Statement.Insert _ | Statement.Delete _ | Statement.Update _
    | Statement.Query _ ->
        shadow
  in
  ignore (List.fold_left step emptied program)

let pp ppf program =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@,")
       Statement.pp)
    program

let to_string p = Format.asprintf "%a" pp p
