(** Extended relational algebra programs (Definition 4.2).

    A program is a single statement or a program followed by a statement
    — i.e. a non-empty statement sequence, represented here as a list.
    Executing a program threads the database state through the
    statements and accumulates the outputs of query statements in
    order. *)

open Mxra_relational

type t = Statement.t list
(** Non-empty by the paper's grammar; the empty program is accepted and
    behaves as the identity (harmless generalisation the transaction
    machinery relies on for the empty bracket). *)

val exec : Database.t -> t -> Database.t * Relation.t list
(** Run the statements left to right; the relation list holds the
    results of [?E] statements in execution order.  Exceptions from
    {!Statement.exec} abort execution midway — {!Transaction} turns that
    into a clean abort. *)

val infer : Database.t -> t -> unit
(** Statically check all statements, threading assignments: an [Assign]
    extends the visible schema for subsequent statements (checked by
    executing the assignment on an emptied copy of the state, so only
    schemas flow, not data).
    @raise Statement.Exec_error / [Typecheck.Type_error] on the first
    ill-formed statement. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
