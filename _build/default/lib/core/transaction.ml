open Mxra_relational

type t = {
  name : string;
  body : Program.t;
  abort_if : (Database.t -> bool) option;
}

let make ?(name = "txn") ?abort_if body = { name; body; abort_if }

type outcome =
  | Committed of {
      state : Database.t;
      outputs : Relation.t list;
    }
  | Aborted of {
      state : Database.t;
      reason : string;
    }

(* The pre-state D^t is a value; abort simply re-installs it.  Commit
   drops temporaries and advances the logical clock, yielding D^{t+1}. *)
let run db txn =
  let abort reason = Aborted { state = Database.tick db; reason } in
  match Program.exec db txn.body with
  | exception Statement.Exec_error msg -> abort msg
  | exception Typecheck.Type_error msg -> abort msg
  | exception Scalar.Eval_error msg -> abort msg
  | exception Aggregate.Undefined kind ->
      abort
        (Printf.sprintf "%s applied to an empty multi-set"
           (Aggregate.name kind))
  | exception Database.Unknown_relation name ->
      abort (Printf.sprintf "unknown relation %s" name)
  | exception Database.Duplicate_relation name ->
      abort (Printf.sprintf "assignment shadows persistent relation %s" name)
  | exception Relation.Schema_mismatch msg -> abort msg
  | final, outputs ->
      let must_abort =
        match txn.abort_if with None -> false | Some cond -> cond final
      in
      if must_abort then abort (txn.name ^ ": abort_if condition held")
      else
        Committed
          {
            state = Database.tick (Database.drop_temporaries final);
            outputs;
          }

let state_of = function
  | Committed { state; _ } | Aborted { state; _ } -> state

let committed = function Committed _ -> true | Aborted _ -> false

let run_all db txns =
  let step (db, outcomes) txn =
    let outcome = run db txn in
    (state_of outcome, outcome :: outcomes)
  in
  let final, outcomes = List.fold_left step (db, []) txns in
  (final, List.rev outcomes)

let transition pre outcome = (pre, state_of outcome)
