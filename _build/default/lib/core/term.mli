(** Shared abstract syntax of scalar expressions and selection conditions.

    Selection conditions [φ] (Definition 3.1) compare scalar expressions,
    and scalar expressions (Definition 3.4's extended projection lists)
    may embed a conditional guarded by a condition — hence the two ASTs
    are mutually recursive and live here.  Operations on them are in
    {!Scalar} and {!Pred}, which re-export these constructors. *)

open Mxra_relational

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat

type cmpop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type scalar =
  | Attr of int  (** [%i], 1-based. *)
  | Lit of Value.t
  | Binop of binop * scalar * scalar
  | Neg of scalar
  | If of pred * scalar * scalar

and pred =
  | True
  | False
  | Cmp of cmpop * scalar * scalar
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val equal_scalar : scalar -> scalar -> bool
val equal_pred : pred -> pred -> bool
