open Mxra_relational

let equivalent_on db e1 e2 =
  let r1 = Eval.eval db e1 and r2 = Eval.eval db e2 in
  Schema.compatible (Relation.schema r1) (Relation.schema r2)
  && Relation.equal r1 r2

let arity_of env e =
  match Typecheck.infer env e with
  | schema -> Some (Schema.arity schema)
  | exception Typecheck.Type_error _ -> None

(* Theorem 3.1 *)

let derive_intersect = function
  | Expr.Intersect (e1, e2) -> Some (Expr.Diff (e1, Expr.Diff (e1, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let underive_intersect = function
  | Expr.Diff (e1, Expr.Diff (e1', e2)) when Expr.equal e1 e1' ->
      Some (Expr.Intersect (e1, e2))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let derive_join = function
  | Expr.Join (p, e1, e2) -> Some (Expr.Select (p, Expr.Product (e1, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let underive_join = function
  | Expr.Select (p, Expr.Product (e1, e2)) -> Some (Expr.Join (p, e1, e2))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

(* Theorem 3.2 *)

let distribute_select_union = function
  | Expr.Select (p, Expr.Union (e1, e2)) ->
      Some (Expr.Union (Expr.Select (p, e1), Expr.Select (p, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let factor_select_union = function
  | Expr.Union (Expr.Select (p, e1), Expr.Select (q, e2)) when Pred.equal p q
    ->
      Some (Expr.Select (p, Expr.Union (e1, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let distribute_project_union = function
  | Expr.Project (exprs, Expr.Union (e1, e2)) ->
      Some (Expr.Union (Expr.Project (exprs, e1), Expr.Project (exprs, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let factor_project_union = function
  | Expr.Union (Expr.Project (l1, e1), Expr.Project (l2, e2))
    when List.length l1 = List.length l2 && List.for_all2 Scalar.equal l1 l2
    ->
      Some (Expr.Project (l1, Expr.Union (e1, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let unique_union = function
  | Expr.Unique (Expr.Union (e1, e2)) ->
      Some (Expr.Unique (Expr.Union (Expr.Unique e1, Expr.Unique e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

(* Theorem 3.3: associativity.  For ⊎, ∩ and × the regrouping is plain;
   tuple concatenation is associative so no reindexing is needed for ×. *)

let assoc_left_product = function
  | Expr.Product (e1, Expr.Product (e2, e3)) ->
      Some (Expr.Product (Expr.Product (e1, e2), e3))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let assoc_right_product = function
  | Expr.Product (Expr.Product (e1, e2), e3) ->
      Some (Expr.Product (e1, Expr.Product (e2, e3)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let assoc_left_union = function
  | Expr.Union (e1, Expr.Union (e2, e3)) ->
      Some (Expr.Union (Expr.Union (e1, e2), e3))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let assoc_right_union = function
  | Expr.Union (Expr.Union (e1, e2), e3) ->
      Some (Expr.Union (e1, Expr.Union (e2, e3)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let assoc_left_intersect = function
  | Expr.Intersect (e1, Expr.Intersect (e2, e3)) ->
      Some (Expr.Intersect (Expr.Intersect (e1, e2), e3))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let assoc_right_intersect = function
  | Expr.Intersect (Expr.Intersect (e1, e2), e3) ->
      Some (Expr.Intersect (e1, Expr.Intersect (e2, e3)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

(* Join associativity.  All conditions live in the flat schema
   E1 ⊕ E2 ⊕ E3 once the inner condition is reindexed, so the regrouping
   is a matter of splitting conjuncts by footprint. *)

let within lo hi p =
  List.for_all (fun i -> lo <= i && i <= hi) (Pred.attrs_used p)

let assoc_left_join env = function
  | Expr.Join (p1, e1, Expr.Join (p2, e2, e3)) -> (
      match (arity_of env e1, arity_of env e2) with
      | Some a1, Some a2 ->
          (* Flat indexing: p1 already is over E1⊕E2⊕E3; p2 is over
             E2⊕E3 and shifts up by a1. *)
          let p2' = Pred.shift a1 p2 in
          let inner, outer =
            List.partition (within 1 (a1 + a2)) (Pred.conjuncts p1)
          in
          let inner_cond = Pred.simplify (Pred.conj inner) in
          let outer_cond = Pred.simplify (Pred.conj (outer @ [ p2' ])) in
          Some (Expr.Join (outer_cond, Expr.Join (inner_cond, e1, e2), e3))
      | None, _ | _, None -> None)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let assoc_right_join env = function
  | Expr.Join (p2, Expr.Join (p1, e1, e2), e3) -> (
      match (arity_of env e1, arity_of env e2, arity_of env e3) with
      | Some a1, Some a2, Some a3 ->
          (* p1 is over E1⊕E2 (flat-compatible); p2 over E1⊕E2⊕E3.
             Conjuncts of p2 inside E2⊕E3 shift down by a1 into the new
             inner join; everything else stays in the new outer join. *)
          let keep, push =
            List.partition
              (fun c -> not (within (a1 + 1) (a1 + a2 + a3) c))
              (Pred.conjuncts p2)
          in
          let inner_cond =
            Pred.simplify (Pred.conj (List.map (Pred.shift (-a1)) push))
          in
          let outer_cond =
            Pred.simplify (Pred.conj (Pred.conjuncts p1 @ keep))
          in
          Some (Expr.Join (outer_cond, e1, Expr.Join (inner_cond, e2, e3)))
      | None, _, _ | _, None, _ | _, _, None -> None)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

(* Classical extras *)

let commute_union = function
  | Expr.Union (e1, e2) -> Some (Expr.Union (e2, e1))
  | Expr.Rel _ | Expr.Const _ | Expr.Diff _ | Expr.Product _ | Expr.Select _
  | Expr.Project _ | Expr.Intersect _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let commute_intersect = function
  | Expr.Intersect (e1, e2) -> Some (Expr.Intersect (e2, e1))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

(* π that restores the E1 ⊕ E2 column order after swapping to E2 × E1. *)
let swap_projection a1 a2 =
  List.init a1 (fun i -> Scalar.attr (a2 + i + 1))
  @ List.init a2 (fun i -> Scalar.attr (i + 1))

(* Reindexing of a condition across the swap: attributes of E1 move up
   by a2, attributes of E2 move down by a1. *)
let swap_subst a1 a2 i = if i <= a1 then i + a2 else i - a1

let commute_product env = function
  | Expr.Product (e1, e2) -> (
      match (arity_of env e1, arity_of env e2) with
      | Some a1, Some a2 ->
          Some
            (Expr.Project (swap_projection a1 a2, Expr.Product (e2, e1)))
      | None, _ | _, None -> None)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Select _
  | Expr.Project _ | Expr.Intersect _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let commute_join env = function
  | Expr.Join (p, e1, e2) -> (
      match (arity_of env e1, arity_of env e2) with
      | Some a1, Some a2 ->
          let p' = Pred.rename (swap_subst a1 a2) p in
          Some (Expr.Project (swap_projection a1 a2, Expr.Join (p', e2, e1)))
      | None, _ | _, None -> None)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let cascade_select = function
  | Expr.Select (Pred.And (p, q), e) ->
      Some (Expr.Select (p, Expr.Select (q, e)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let merge_select = function
  | Expr.Select (p, Expr.Select (q, e)) ->
      Some (Expr.Select (Pred.And (p, q), e))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let commute_select = function
  | Expr.Select (p, Expr.Select (q, e)) ->
      Some (Expr.Select (q, Expr.Select (p, e)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let select_into_join = function
  | Expr.Select (p, Expr.Join (q, e1, e2)) ->
      Some (Expr.Join (Pred.And (q, p), e1, e2))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let distribute_select_diff = function
  | Expr.Select (p, Expr.Diff (e1, e2)) ->
      Some (Expr.Diff (Expr.Select (p, e1), Expr.Select (p, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let distribute_select_intersect = function
  | Expr.Select (p, Expr.Intersect (e1, e2)) ->
      Some (Expr.Intersect (Expr.Select (p, e1), Expr.Select (p, e2)))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let idempotent_unique = function
  | Expr.Unique (Expr.Unique e) -> Some (Expr.Unique e)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let commute_unique_select = function
  | Expr.Unique (Expr.Select (p, e)) ->
      Some (Expr.Select (p, Expr.Unique e))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let distribute_unique_product = function
  | Expr.Unique (Expr.Product (e1, e2)) ->
      Some (Expr.Product (Expr.Unique e1, Expr.Unique e2))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let distribute_unique_intersect = function
  | Expr.Unique (Expr.Intersect (e1, e2)) ->
      Some (Expr.Intersect (Expr.Unique e1, Expr.Unique e2))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

let distribute_unique_join = function
  | Expr.Unique (Expr.Join (p, e1, e2)) ->
      Some (Expr.Join (p, Expr.Unique e1, Expr.Unique e2))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

type rule = {
  rule_name : string;
  apply : Typecheck.env -> Expr.t -> Expr.t option;
}

let pure name f = { rule_name = name; apply = (fun _env e -> f e) }
let with_env name f = { rule_name = name; apply = f }

let all_rules =
  [
    pure "derive_intersect" derive_intersect;
    pure "underive_intersect" underive_intersect;
    pure "derive_join" derive_join;
    pure "underive_join" underive_join;
    pure "distribute_select_union" distribute_select_union;
    pure "factor_select_union" factor_select_union;
    pure "distribute_project_union" distribute_project_union;
    pure "factor_project_union" factor_project_union;
    pure "unique_union" unique_union;
    pure "assoc_left_product" assoc_left_product;
    pure "assoc_right_product" assoc_right_product;
    pure "assoc_left_union" assoc_left_union;
    pure "assoc_right_union" assoc_right_union;
    pure "assoc_left_intersect" assoc_left_intersect;
    pure "assoc_right_intersect" assoc_right_intersect;
    with_env "assoc_left_join" assoc_left_join;
    with_env "assoc_right_join" assoc_right_join;
    pure "commute_union" commute_union;
    pure "commute_intersect" commute_intersect;
    with_env "commute_product" commute_product;
    with_env "commute_join" commute_join;
    pure "cascade_select" cascade_select;
    pure "merge_select" merge_select;
    pure "commute_select" commute_select;
    pure "select_into_join" select_into_join;
    pure "distribute_select_diff" distribute_select_diff;
    pure "distribute_select_intersect" distribute_select_intersect;
    pure "idempotent_unique" idempotent_unique;
    pure "commute_unique_select" commute_unique_select;
    pure "distribute_unique_product" distribute_unique_product;
    pure "distribute_unique_intersect" distribute_unique_intersect;
    pure "distribute_unique_join" distribute_unique_join;
  ]
