open Mxra_relational

type kind =
  | Cnt
  | Sum
  | Avg
  | Min
  | Max
  | Var
  | Stddev

exception Undefined of kind

let all = [ Cnt; Sum; Avg; Min; Max ]
let all_extended = all @ [ Var; Stddev ]

let name = function
  | Cnt -> "CNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Var -> "VAR"
  | Stddev -> "STDDEV"

let of_name s =
  match String.uppercase_ascii s with
  | "CNT" | "COUNT" -> Some Cnt
  | "SUM" -> Some Sum
  | "AVG" | "AVERAGE" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "VAR" | "VARIANCE" -> Some Var
  | "STDDEV" | "STDEV" -> Some Stddev
  | _ -> None

let error fmt = Format.kasprintf (fun s -> raise (Scalar.Eval_error s)) fmt

let result_domain kind d =
  match kind with
  | Cnt -> Domain.DInt
  | Sum ->
      if Domain.is_numeric d then d
      else error "SUM requires a numeric domain, got %a" Domain.pp d
  | Avg ->
      if Domain.is_numeric d then Domain.DFloat
      else error "AVG requires a numeric domain, got %a" Domain.pp d
  | Min | Max -> (
      match d with
      | Domain.DInt | Domain.DFloat | Domain.DStr -> d
      | Domain.DBool -> error "MIN/MAX undefined on the boolean domain")
  | Var | Stddev ->
      if Domain.is_numeric d then Domain.DFloat
      else error "%s requires a numeric domain, got %a" (name kind) Domain.pp d

let applicable kind d =
  match result_domain kind d with
  | _ -> true
  | exception Scalar.Eval_error _ -> false

let cnt column = List.fold_left (fun acc (_, n) -> acc + n) 0 column

(* Floating-point folds are canonicalised by sorting the column and
   merging equal values (integer count addition is exact), so the result
   is independent of both the order operators deliver entries in and how
   a value's multiplicity is split across entries — the reference
   evaluator and the engine must agree bit for bit. *)
let canonical column =
  let sorted =
    List.sort (fun (v1, _) (v2, _) -> Value.compare v1 v2) column
  in
  let rec merge = function
    | (v1, n1) :: (v2, n2) :: rest when Value.equal v1 v2 ->
        merge ((v1, n1 + n2) :: rest)
    | entry :: rest -> entry :: merge rest
    | [] -> []
  in
  merge sorted

let sum column =
  (* Sums stay in the integer domain when every input is an integer;
     any float promotes the whole sum, matching [result_domain]. *)
  let exception Promote in
  let int_sum () =
    List.fold_left
      (fun acc (v, n) ->
        match v with
        | Value.Int x -> acc + (x * n)
        | Value.Float _ -> raise Promote
        | Value.Str _ | Value.Bool _ ->
            error "SUM applied to non-numeric value %a" Value.pp v)
      0 column
  in
  match int_sum () with
  | total -> Value.Int total
  | exception Promote ->
      let total =
        List.fold_left
          (fun acc (v, n) ->
            if Value.is_numeric v then
              acc +. (Value.as_float v *. float_of_int n)
            else error "SUM applied to non-numeric value %a" Value.pp v)
          0.0 (canonical column)
      in
      Value.Float total

let avg column =
  let n = cnt column in
  if n = 0 then raise (Undefined Avg)
  else
    let total =
      List.fold_left
        (fun acc (v, k) ->
          if Value.is_numeric v then
            acc +. (Value.as_float v *. float_of_int k)
          else error "AVG applied to non-numeric value %a" Value.pp v)
        0.0 (canonical column)
    in
    total /. float_of_int n

let extremum kind better column =
  match column with
  | [] -> raise (Undefined kind)
  | (v0, _) :: rest ->
      List.fold_left
        (fun acc (v, _) ->
          if better (Value.compare_same_domain v acc) then v else acc)
        v0 rest

let min_v column = extremum Min (fun c -> c < 0) column
let max_v column = extremum Max (fun c -> c > 0) column

let var column =
  let n = cnt column in
  if n = 0 then raise (Undefined Var)
  else
    let mean = avg column in
    let sq_sum =
      List.fold_left
        (fun acc (v, k) ->
          let d = Value.as_float v -. mean in
          acc +. (d *. d *. float_of_int k))
        0.0 (canonical column)
    in
    sq_sum /. float_of_int n

let compute kind column =
  match kind with
  | Cnt -> Value.Int (cnt column)
  | Sum -> sum column
  | Avg -> Value.Float (avg column)
  | Min -> min_v column
  | Max -> max_v column
  | Var -> Value.Float (var column)
  | Stddev -> Value.Float (sqrt (var column))

let compute_for domain kind column =
  match (kind, column, domain) with
  | Sum, [], Domain.DFloat -> Value.Float 0.0
  | Sum, [], (Domain.DInt | Domain.DStr | Domain.DBool) -> Value.Int 0
  | Sum, _ :: _, Domain.DFloat -> (
      (* An all-integer column under a float schema must still yield a
         float, or the result tuple would escape the inferred schema. *)
      match sum column with
      | Value.Int n -> Value.Float (float_of_int n)
      | (Value.Float _ | Value.Str _ | Value.Bool _) as v -> v)
  | (Cnt | Sum | Avg | Min | Max | Var | Stddev), _, _ -> compute kind column

let pp ppf kind = Format.pp_print_string ppf (name kind)
