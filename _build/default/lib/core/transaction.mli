(** Transactions (Definition 4.3).

    A transaction is a program enclosed in transaction brackets,
    executed against a database state [D] at logical time [t].  During
    execution the database passes through intermediate states [D^{t.i}]
    that may contain temporary relations and are invisible outside the
    transaction.  The end bracket:

    - on {e commit}: removes temporary relations from [D^{t.n}] and
      installs the result as [D^{t+1}];
    - on {e abort}: installs [D^t] as [D^{t+1}] — the pre-state, with
      only the logical clock advanced.

    Thus a transaction is an operator transforming a database state into
    another ([D →^T T(D)], a single-step transition, Definition 2.6),
    and atomicity holds by construction: either all effects are
    installed or none ("(T(D) = D^{t.n+1}) ∨ (T(D) = D)").

    Aborts arise from failures during execution (evaluation errors,
    statement errors) or from an explicit {!Statement} sequence guarded
    by [abort_if] — a minimal programmatic abort facility; the paper
    leaves the abort trigger to the environment. *)

open Mxra_relational

type t = {
  name : string;  (** For reporting; not semantically significant. *)
  body : Program.t;
  abort_if : (Database.t -> bool) option;
      (** Evaluated on the final intermediate state [D^{t.n}] (before
          the end bracket); [true] forces an abort.  [None] never
          aborts programmatically. *)
}

val make : ?name:string -> ?abort_if:(Database.t -> bool) -> Program.t -> t

type outcome =
  | Committed of {
      state : Database.t;  (** [D^{t+1}], temporaries dropped. *)
      outputs : Relation.t list;  (** Results of [?E] statements. *)
    }
  | Aborted of {
      state : Database.t;  (** [D^t] re-installed (time advanced). *)
      reason : string;
    }

val run : Database.t -> t -> outcome
(** Execute the transaction.  Never raises for failures inside the
    transaction — those abort it; programming errors outside the model
    ([Invalid_argument] etc.) still propagate. *)

val state_of : outcome -> Database.t
val committed : outcome -> bool

val run_all : Database.t -> t list -> Database.t * outcome list
(** Serial execution of a batch, each transaction seeing the previous
    one's post-state — the paper's isolation property realised by
    serial scheduling. *)

val transition : Database.t -> outcome -> Database.t * Database.t
(** The database transition [(D_t, D_{t+1})] (Definition 2.6) induced
    by running the transaction from the given pre-state. *)
