type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | CONCAT
  | EOF

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "'%s'" s
  | IDENT s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | SEMI -> ";"
  | STAR -> "*"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CONCAT -> "||"
  | EOF -> "<eof>"

exception Lex_error of string * int

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec skip_line i = if i < n && src.[i] <> '\n' then skip_line (i + 1) else i in
  let number i0 =
    let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
    let j = digits i0 in
    let j, is_float =
      if j + 1 < n && src.[j] = '.' && is_digit src.[j + 1] then
        (digits (j + 2), true)
      else (j, false)
    in
    let j, is_float =
      if j < n && (src.[j] = 'e' || src.[j] = 'E') then
        let k = if j + 1 < n && (src.[j + 1] = '+' || src.[j + 1] = '-') then j + 2 else j + 1 in
        if k < n && is_digit src.[k] then (digits (k + 1), true)
        else (j, is_float)
      else (j, is_float)
    in
    let text = String.sub src i0 (j - i0) in
    if is_float then (FLOAT (float_of_string text), j)
    else (INT (int_of_string text), j)
  in
  let string_lit i0 =
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then raise (Lex_error ("unterminated string", i0))
      else if src.[i] = '\'' then
        if i + 1 < n && src.[i + 1] = '\'' then (
          Buffer.add_char buf '\'';
          go (i + 2))
        else (STRING (Buffer.contents buf), i + 1)
      else (
        Buffer.add_char buf src.[i];
        go (i + 1))
    in
    go (i0 + 1)
  in
  let ident i0 =
    let rec go i = if i < n && is_ident_char src.[i] then go (i + 1) else i in
    let j = go i0 in
    (IDENT (String.sub src i0 (j - i0)), j)
  in
  let rec loop i =
    if i >= n then emit EOF i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' -> loop (skip_line (i + 2))
      | '(' -> emit LPAREN i; loop (i + 1)
      | ')' -> emit RPAREN i; loop (i + 1)
      | ',' -> emit COMMA i; loop (i + 1)
      | '.' -> emit DOT i; loop (i + 1)
      | ';' -> emit SEMI i; loop (i + 1)
      | '*' -> emit STAR i; loop (i + 1)
      | '=' -> emit EQ i; loop (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE i; loop (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '>' -> emit NE i; loop (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE i; loop (i + 2)
      | '<' -> emit LT i; loop (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE i; loop (i + 2)
      | '>' -> emit GT i; loop (i + 1)
      | '+' -> emit PLUS i; loop (i + 1)
      | '-' -> emit MINUS i; loop (i + 1)
      | '/' -> emit SLASH i; loop (i + 1)
      | '%' -> emit PERCENT i; loop (i + 1)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit CONCAT i; loop (i + 2)
      | '\'' ->
          let tok, j = string_lit i in
          emit tok i;
          loop j
      | c when is_digit c ->
          let tok, j = number i in
          emit tok i;
          loop j
      | c when is_ident_start c ->
          let tok, j = ident i in
          emit tok i;
          loop j
      | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, i))
  in
  loop 0;
  Array.of_list (List.rev !tokens)
