(** Parser for the SQL subset.

    Covers every statement form the paper exhibits (Examples 3.2 and
    4.1) plus the forms needed to drive a database end to end:

    {v
    SELECT [DISTINCT] star | item, ...
      item ::= expr [AS name] | AGG(col or star) [AS name]
      FROM table [alias], ...
      [WHERE pred] [GROUP BY col, ...]
    INSERT INTO table VALUES (v, ...), ... | INSERT INTO table SELECT ...
    DELETE FROM table [WHERE pred]
    UPDATE table SET col = expr, ... [WHERE pred]
    CREATE TABLE table (col type, ...)
    v}

    Keywords are case-insensitive.  No HAVING, ORDER BY, or subqueries:
    ORDER BY is inexpressible in the paper's formalism (its conclusion
    says so explicitly) and the rest are outside the demonstrated
    correspondence. *)

exception Parse_error of string * int

val parse : string -> Sql_ast.stmt
(** One statement, optionally [;]-terminated.
    @raise Parse_error / [Sql_lexer.Lex_error] on bad input. *)

val parse_script : string -> Sql_ast.stmt list
(** A [;]-separated sequence. *)
