(** Lexer for the SQL subset.

    Keywords are case-insensitive and recognised by the parser;
    identifiers keep their original spelling.  Strings are
    single-quoted with [''] escaping; comments run from [--] to end of
    line.  [||] is string concatenation. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | CONCAT
  | EOF

val token_to_string : token -> string

exception Lex_error of string * int

val tokenize : string -> (token * int) array
(** @raise Lex_error on illegal input. *)
