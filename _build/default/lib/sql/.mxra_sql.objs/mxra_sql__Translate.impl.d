lib/sql/translate.ml: Domain Expr Format List Mxra_core Mxra_relational Option Pred Relation Scalar Schema Sql_ast Sql_parser Statement String Tuple Value
