lib/sql/translate.mli: Expr Mxra_core Mxra_relational Schema Sql_ast Statement Typecheck
