lib/sql/sql_lexer.mli:
