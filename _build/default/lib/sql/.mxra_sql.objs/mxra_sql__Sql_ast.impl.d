lib/sql/sql_ast.ml: Aggregate Domain Mxra_core Mxra_relational Term Value
