lib/sql/sql_parser.ml: Aggregate Array Domain Format List Mxra_core Mxra_relational Option Sql_ast Sql_lexer String Term Value
