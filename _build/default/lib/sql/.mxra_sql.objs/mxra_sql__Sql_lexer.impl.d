lib/sql/sql_lexer.ml: Array Buffer List Printf String
