(** Synthetic relation generators for benchmarks and property tests.

    The experiment grid of DESIGN.md sweeps relation size and {e
    duplicate factor}; this module produces relations with those knobs.
    The duplicate factor of a relation is [cardinal / support_size] — a
    factor of 1 means all tuples distinct, higher factors mean heavier
    duplication (what bag semantics is for). *)

open Mxra_relational

val relation :
  rng:Rng.t ->
  schema:Schema.t ->
  size:int ->
  ?dup_factor:int ->
  ?skew:float ->
  unit ->
  Relation.t
(** [size] tuples (counted with multiplicity) over [schema].  Values are
    drawn per domain from pools sized so that roughly [size / dup_factor]
    distinct tuples arise (default [dup_factor] 1 still allows chance
    collisions); [skew >= 0] (default 0) Zipf-skews the value choice.
    @raise Invalid_argument on non-positive [size] bounds. *)

val two_column_int : rng:Rng.t -> size:int -> distinct:int -> Relation.t
(** A convenient [(a:int, b:int)] relation with values uniform in
    [0, distinct); the join benchmarks build on it. *)

val join_pair :
  rng:Rng.t ->
  left:int ->
  right:int ->
  key_range:int ->
  Relation.t * Relation.t
(** Two relations [(k:int, v:int)] sharing key range [0, key_range);
    joining them on the key columns has expected selectivity
    [1/key_range]. *)

val chain_relation :
  rng:Rng.t -> nodes:int -> extra_edges:int -> Relation.t
(** A binary [(src:int, dst:int)] edge relation: a chain [0→1→…→nodes-1]
    plus [extra_edges] random forward edges — acyclic by construction,
    for the transitive-closure experiment. *)
