open Mxra_relational
open Mxra_core

let customer_schema =
  Schema.of_list
    [ ("id", Domain.DInt); ("segment", Domain.DStr); ("country", Domain.DStr) ]

let orders_schema =
  Schema.of_list
    [ ("id", Domain.DInt); ("customer", Domain.DInt); ("day", Domain.DInt) ]

let lineitem_schema =
  Schema.of_list
    [ ("order_id", Domain.DInt); ("product", Domain.DStr);
      ("qty", Domain.DInt); ("price", Domain.DFloat) ]

let segments = [ "gold"; "silver"; "bronze" ]
let countries = [ "NL"; "BE"; "DE"; "FR"; "UK"; "US" ]

let products =
  [ "anvil"; "bolt"; "cog"; "dynamo"; "flange"; "gasket"; "lever";
    "pulley"; "rivet"; "spring"; "washer"; "widget" ]

let generate ~rng ~customers ~orders ?(items_per_order = 4) () =
  if customers <= 0 || orders < 0 || items_per_order <= 0 then
    invalid_arg "Retail.generate: non-positive sizes";
  let customer_rows =
    List.init customers (fun i ->
        Tuple.of_list
          [ Value.Int i;
            Value.Str (Rng.pick rng segments);
            Value.Str (Rng.pick rng countries) ])
  in
  (* Orders are Zipf-skewed over customers: a few customers order a
     lot, producing the duplicate-heavy projections bags are for. *)
  let customer_zipf = Zipf.make ~n:customers ~s:1.0 in
  let order_rows =
    List.init orders (fun i ->
        Tuple.of_list
          [ Value.Int i;
            Value.Int (Zipf.sample customer_zipf rng - 1);
            Value.Int (Rng.int rng 365) ])
  in
  let product_zipf = Zipf.make ~n:(List.length products) ~s:0.8 in
  let product_array = Array.of_list products in
  let lineitem_rows =
    List.concat_map
      (fun order ->
        let n_items = 1 + Rng.int rng (3 * items_per_order) in
        List.init n_items (fun _ ->
            Tuple.of_list
              [ Value.Int order;
                Value.Str product_array.(Zipf.sample product_zipf rng - 1);
                Value.Int (1 + Rng.int rng 9);
                Value.Float (float_of_int (Rng.int_in rng 50 5000) /. 100.0) ]))
      (List.init orders Fun.id)
  in
  Database.of_relations
    [
      ("customer", Relation.of_list customer_schema customer_rows);
      ("orders", Relation.of_list orders_schema order_rows);
      ("lineitem", Relation.of_list lineitem_schema lineitem_rows);
    ]

let constraints =
  [
    Mxra_ext.Constraints.Key ("customer", [ 1 ]);
    Mxra_ext.Constraints.Key ("orders", [ 1 ]);
    Mxra_ext.Constraints.Foreign_key
      { from_relation = "orders"; from_attrs = [ 2 ];
        to_relation = "customer"; to_attrs = [ 1 ] };
    Mxra_ext.Constraints.Foreign_key
      { from_relation = "lineitem"; from_attrs = [ 1 ];
        to_relation = "orders"; to_attrs = [ 1 ] };
    Mxra_ext.Constraints.Check
      ("lineitem", Pred.gt (Scalar.attr 3) (Scalar.int 0));
  ]

(* customer ⊕ orders ⊕ lineitem = %1..%10:
   customer(id %1, segment %2, country %3), orders(id %4, customer %5,
   day %6), lineitem(order_id %7, product %8, qty %9, price %10). *)
let three_way =
  Expr.join
    (Pred.eq (Scalar.attr 4) (Scalar.attr 7))
    (Expr.join
       (Pred.eq (Scalar.attr 1) (Scalar.attr 5))
       (Expr.rel "customer") (Expr.rel "orders"))
    (Expr.rel "lineitem")

let revenue_per_country =
  Expr.group_by [ 1 ]
    [ (Aggregate.Sum, 2) ]
    (Expr.project
       [ Scalar.attr 3;
         Scalar.mul (Scalar.attr 9) (Scalar.attr 10) ]
       three_way)

let order_sizes =
  Expr.group_by [ 1 ]
    [ (Aggregate.Cnt, 2); (Aggregate.Sum, 3) ]
    (Expr.rel "lineitem")

let repeat_products =
  Expr.project_attrs [ 8 ]
    (Expr.select (Pred.eq (Scalar.attr 2) (Scalar.str "gold")) three_way)
