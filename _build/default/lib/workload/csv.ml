open Mxra_relational

exception Csv_error of string * int

let error line fmt = Format.kasprintf (fun s -> raise (Csv_error (s, line))) fmt

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let field_of_value = function
  | Value.Int n -> string_of_int n
  | Value.Float _ as v -> Value.to_string v
  | Value.Str s -> quote s
  | Value.Bool b -> string_of_bool b

let encode r =
  let buf = Buffer.create 1024 in
  let header =
    Schema.attributes (Relation.schema r)
    |> List.map (fun (a : Schema.attribute) ->
           quote (a.Schema.name ^ ":" ^ Domain.to_string a.Schema.domain))
    |> String.concat ","
  in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Relation.Bag.iter
    (fun t n ->
      let line =
        Tuple.to_list t |> List.map field_of_value |> String.concat ","
      in
      for _ = 1 to n do
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      done)
    (Relation.bag r);
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

(* Split one logical CSV record into fields; [i] is the cursor into the
   whole source, records may span lines via quoted fields. *)
let parse_records source =
  let n = String.length source in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := (List.rev !fields, !line) :: !records;
    fields := []
  in
  let rec scan i in_quotes =
    if i >= n then begin
      if Buffer.length buf > 0 || !fields <> [] then flush_record ();
      List.rev !records
    end
    else
      let c = source.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && source.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            scan (i + 2) true
          end
          else scan (i + 1) false
        else begin
          if c = '\n' then incr line;
          Buffer.add_char buf c;
          scan (i + 1) true
        end
      else
        match c with
        | '"' -> scan (i + 1) true
        | ',' ->
            flush_field ();
            scan (i + 1) false
        | '\r' -> scan (i + 1) false
        | '\n' ->
            flush_record ();
            incr line;
            scan (i + 1) false
        | _ ->
            Buffer.add_char buf c;
            scan (i + 1) false
  in
  scan 0 false

let parse_typed_header line fields =
  List.map
    (fun field ->
      match String.rindex_opt field ':' with
      | None -> error line "header field %S lacks a :domain annotation" field
      | Some i -> (
          let name = String.sub field 0 i in
          let domain_name =
            String.sub field (i + 1) (String.length field - i - 1)
          in
          match Domain.of_string domain_name with
          | Some d -> (name, d)
          | None -> error line "unknown domain %S" domain_name))
    fields

let value_of_field line domain field =
  match domain with
  | Domain.DInt -> (
      match int_of_string_opt field with
      | Some n -> Value.Int n
      | None -> error line "%S is not an int" field)
  | Domain.DFloat -> (
      match float_of_string_opt field with
      | Some f -> Value.Float f
      | None -> error line "%S is not a float" field)
  | Domain.DBool -> (
      match bool_of_string_opt (String.lowercase_ascii field) with
      | Some b -> Value.Bool b
      | None -> error line "%S is not a bool" field)
  | Domain.DStr -> Value.Str field

let rows_to_relation schema rows =
  let arity = Schema.arity schema in
  let tuple (fields, line) =
    if List.length fields <> arity then
      error line "expected %d fields, found %d" arity (List.length fields);
    Tuple.of_list
      (List.mapi
         (fun i field -> value_of_field line (Schema.domain schema (i + 1)) field)
         fields)
  in
  Relation.of_list schema (List.map tuple rows)

let decode source =
  match parse_records source with
  | [] -> error 1 "empty input: no header"
  | (header, hline) :: rows ->
      let schema = Schema.of_list (parse_typed_header hline header) in
      rows_to_relation schema rows

(* Infer the narrowest domain accepting every value in a column. *)
let infer_domain column =
  let all p = List.for_all p column in
  if all (fun f -> int_of_string_opt f <> None) then Domain.DInt
  else if all (fun f -> float_of_string_opt f <> None) then Domain.DFloat
  else if
    all (fun f -> bool_of_string_opt (String.lowercase_ascii f) <> None)
  then Domain.DBool
  else Domain.DStr

let decode_untyped source =
  match parse_records source with
  | [] -> error 1 "empty input: no header"
  | (header, _) :: rows ->
      let arity = List.length header in
      List.iter
        (fun (fields, line) ->
          if List.length fields <> arity then
            error line "expected %d fields, found %d" arity
              (List.length fields))
        rows;
      let column i = List.map (fun (fields, _) -> List.nth fields i) rows in
      let domains =
        List.init arity (fun i ->
            if rows = [] then Domain.DStr else infer_domain (column i))
      in
      let schema = Schema.of_list (List.combine header domains) in
      rows_to_relation schema rows

let write_file path r =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (encode r))

let read_file path =
  decode (In_channel.with_open_text path In_channel.input_all)
