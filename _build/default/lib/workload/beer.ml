open Mxra_relational
open Mxra_core

let beer_schema =
  Schema.of_list
    [ ("name", Domain.DStr); ("brewery", Domain.DStr); ("alcperc", Domain.DFloat) ]

let brewery_schema =
  Schema.of_list
    [ ("name", Domain.DStr); ("city", Domain.DStr); ("country", Domain.DStr) ]

let beer_tuple name brewery alcperc =
  Tuple.of_list [ Value.Str name; Value.Str brewery; Value.Float alcperc ]

let brewery_tuple name city country =
  Tuple.of_list [ Value.Str name; Value.Str city; Value.Str country ]

let tiny =
  let breweries =
    [
      brewery_tuple "Guineken" "Amsterdam" "NL";
      brewery_tuple "Grolsch" "Enschede" "NL";
      brewery_tuple "Bavaria" "Lieshout" "NL";
      brewery_tuple "DeKoninck" "Antwerp" "BE";
      brewery_tuple "Chimay" "Chimay" "BE";
      brewery_tuple "Paulaner" "Munich" "DE";
    ]
  in
  let beers =
    [
      (* "Pilsener" is brewed by three Dutch breweries, so Example 3.1
         yields duplicates, as the paper notes. *)
      beer_tuple "Pilsener" "Guineken" 5.0;
      beer_tuple "Pilsener" "Grolsch" 5.2;
      beer_tuple "Pilsener" "Bavaria" 4.9;
      beer_tuple "Bock" "Guineken" 6.5;
      beer_tuple "Bock" "Grolsch" 6.4;
      beer_tuple "Tripel" "DeKoninck" 8.0;
      beer_tuple "Tripel" "Chimay" 8.1;
      beer_tuple "Blauw" "Chimay" 9.0;
      beer_tuple "Weissbier" "Paulaner" 5.5;
      beer_tuple "Oud Bruin" "Bavaria" 3.5;
    ]
  in
  Database.of_relations
    [
      ("beer", Relation.of_list beer_schema beers);
      ("brewery", Relation.of_list brewery_schema breweries);
    ]

let countries = [ "NL"; "BE"; "DE"; "UK"; "CZ"; "US" ]

let beer_styles =
  [
    "Pilsener"; "Bock"; "Tripel"; "Dubbel"; "Stout"; "Porter"; "IPA";
    "Lager"; "Weissbier"; "Saison"; "Quadrupel"; "Oud Bruin";
  ]

let generate ~rng ~breweries ~beers ?(name_skew = 1.0) () =
  if breweries <= 0 || beers < 0 then
    invalid_arg "Beer.generate: non-positive sizes";
  let brewery_name i = Printf.sprintf "brewery%03d" i in
  let brewery_rows =
    List.init breweries (fun i ->
        brewery_tuple (brewery_name i)
          (Printf.sprintf "city%02d" (Rng.int rng 40))
          (Rng.pick rng countries))
  in
  (* Beer names are Zipf-skewed over a pool much smaller than [beers],
     so popular styles repeat across breweries — the duplicate source. *)
  let pool =
    List.concat_map
      (fun style -> List.init 4 (fun i -> Printf.sprintf "%s %d" style i))
      beer_styles
  in
  let pool = Array.of_list pool in
  let zipf = Zipf.make ~n:(Array.length pool) ~s:name_skew in
  let beer_rows =
    List.init beers (fun _ ->
        beer_tuple
          pool.(Zipf.sample zipf rng - 1)
          (brewery_name (Rng.int rng breweries))
          (float_of_int (Rng.int_in rng 30 120) /. 10.0))
  in
  Database.of_relations
    [
      ("beer", Relation.of_list beer_schema beer_rows);
      ("brewery", Relation.of_list brewery_schema brewery_rows);
    ]

(* beer ⋈ brewery has schema
   (name, brewery, alcperc, name', city, country) = %1..%6. *)
let beer_join_brewery =
  Expr.join (Pred.eq (Scalar.attr 2) (Scalar.attr 4)) (Expr.rel "beer")
    (Expr.rel "brewery")

let example_3_1 =
  Expr.project_attrs [ 1 ]
    (Expr.select (Pred.eq (Scalar.attr 6) (Scalar.str "NL")) beer_join_brewery)

let example_3_2 =
  Expr.group_by [ 6 ] [ (Aggregate.Avg, 3) ] beer_join_brewery

let example_3_2_reduced =
  (* π_{(alcperc,country)} reduces the join result to %1=alcperc,
     %2=country before grouping. *)
  Expr.group_by [ 2 ]
    [ (Aggregate.Avg, 1) ]
    (Expr.project_attrs [ 3; 6 ] beer_join_brewery)

let example_4_1 =
  Statement.Update
    ( "beer",
      Expr.select (Pred.eq (Scalar.attr 2) (Scalar.str "Guineken"))
        (Expr.rel "beer"),
      [ Scalar.attr 1; Scalar.attr 2; Scalar.mul (Scalar.attr 3) (Scalar.float 1.1) ] )
