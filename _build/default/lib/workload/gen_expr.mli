(** Random well-typed algebra expressions and databases.

    The repository's central property tests — every {!Mxra_core.Equiv}
    rule preserves semantics; the engine agrees with the reference
    evaluator; the optimizer never changes results — quantify over
    expressions {e and} database states.  This module generates both,
    deterministically from a seed, with typing guaranteed by
    construction (generation is directed by target schemas).

    Generated expressions avoid the two benign sources of dynamic
    failure (division/modulo, and partial aggregates over a possibly
    empty whole-relation group) so that properties can demand successful
    evaluation; dedicated tests cover those failure paths explicitly. *)

open Mxra_relational
open Mxra_core

val database : rng:Rng.t -> ?relations:int -> ?max_size:int -> unit -> Database.t
(** A database of [relations] (default 3) bag relations named [r1, r2,
    ...] with random small schemas (arity 1–4) and up to [max_size]
    (default 24) tuples each, duplicates likely. *)

val expr : rng:Rng.t -> Database.t -> depth:int -> Expr.t
(** A well-typed expression of operator depth at most [depth] over the
    database's relations. *)

val expr_of_schema : rng:Rng.t -> Database.t -> depth:int -> Schema.t -> Expr.t
(** Like {!expr} but with the given result domains (names may differ). *)

val pred_for : rng:Rng.t -> Schema.t -> Pred.t
(** A random condition over the schema, biased toward selective but
    satisfiable comparisons. *)

val scalar_for : rng:Rng.t -> Schema.t -> Domain.t -> Scalar.t
(** A random scalar expression of the given result domain. *)

type scenario = {
  db : Database.t;
  expr : Expr.t;
}

val scenario : seed:int -> depth:int -> scenario
(** Database plus expression from a single integer seed — the interface
    the qcheck properties consume. *)
