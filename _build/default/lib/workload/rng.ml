type t = Random.State.t

let make seed = Random.State.make [| seed; 0x6d78_7261 |]

let split t =
  let seed = Random.State.bits t in
  Random.State.make [| seed; Random.State.bits t |]

let int t bound = Random.State.int t bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 weighted in
  if total <= 0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let rec walk target = function
    | [] -> invalid_arg "Rng.pick_weighted: unreachable"
    | (w, x) :: rest ->
        let w = max 0 w in
        if target < w then x else walk (target - w) rest
  in
  walk (int t total) weighted

let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
