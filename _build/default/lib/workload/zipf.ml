type t = {
  n : int;
  s : float;
  cdf : float array;  (* cdf.(k-1) = P(rank <= k), normalised to 1. *)
}

let make ~n ~s =
  if n <= 0 then invalid_arg "Zipf.make: n <= 0";
  if s < 0.0 then invalid_arg "Zipf.make: s < 0";
  let cdf = Array.make n 0.0 in
  let running = ref 0.0 in
  for k = 1 to n do
    running := !running +. (1.0 /. Float.pow (float_of_int k) s);
    cdf.(k - 1) <- !running
  done;
  let total = !running in
  Array.iteri (fun i p -> cdf.(i) <- p /. total) cdf;
  { n; s; cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Least k with cdf.(k) >= u. *)
  let rec search lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

let n t = t.n
let s t = t.s
