(** CSV import/export for relations.

    Interchange with the outside world: a relation serialises to RFC
    4180-style CSV with a typed header row ([name:domain]), duplicates
    written as repeated rows (the expanded form of the bag).  Import
    either trusts the typed header or infers domains from the data
    (int ⊂ float; anything unparseable is a string; [true]/[false] are
    booleans). *)

open Mxra_relational

exception Csv_error of string * int
(** Message and 1-based line number. *)

val encode : Relation.t -> string
(** Header plus one line per tuple occurrence. *)

val decode : string -> Relation.t
(** Parse CSV produced by {!encode} (typed header required).
    @raise Csv_error on malformed input or values outside the declared
    domains. *)

val decode_untyped : string -> Relation.t
(** Parse CSV with a plain header (no [:domain] annotations), inferring
    each column's domain from its values.  An empty body yields an
    all-string schema. *)

val write_file : string -> Relation.t -> unit
val read_file : string -> Relation.t
