(** Deterministic pseudo-random number generation for workloads.

    A thin facade over [Random.State] with explicit seeding, so every
    generated workload, test database and benchmark input is reproducible
    from a printed seed.  All generators in this library take a [Rng.t]
    rather than touching global state. *)

type t

val make : int -> t
(** Generator seeded from an integer. *)

val split : t -> t
(** A fresh generator derived from (and advancing) the given one;
    use to give independent streams to sub-generators. *)

val int : t -> int -> int
(** [int t bound] ∈ [0, bound); [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] ∈ [lo, hi] inclusive; [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] ∈ [0, bound). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice.  @raise Invalid_argument on the empty list. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** Choice proportional to the non-negative integer weights; at least
    one weight must be positive.
    @raise Invalid_argument otherwise. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (Fisher–Yates). *)
