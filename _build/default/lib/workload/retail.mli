(** A three-relation retail workload (TPC-style, scaled down).

    The beer database demonstrates the paper's examples; this generator
    provides the classic decision-support shape — customers, orders,
    line items — for exercising multi-way joins, grouped aggregation and
    the optimizer on something resembling a production schema:

    {v
      customer (id:int, segment:str,  country:str)
      orders   (id:int, customer:int, day:int)
      lineitem (order_id:int, product:str, qty:int, price:float)
    v}

    Foreign keys hold by construction ([orders.customer] →
    [customer.id], [lineitem.order_id] → [orders.id]) and are declared
    via {!constraints} so integrity tests can use the dataset.  Orders
    per customer and items per order are skewed, giving the duplicate-
    heavy projections that bag semantics is about. *)

open Mxra_relational
open Mxra_core

val customer_schema : Schema.t
val orders_schema : Schema.t
val lineitem_schema : Schema.t

val generate :
  rng:Rng.t -> customers:int -> orders:int -> ?items_per_order:int -> unit ->
  Database.t
(** [items_per_order] is the mean (default 4, Zipf-skewed 1..3×mean). *)

val constraints : Mxra_ext.Constraints.t list
(** Keys and foreign keys of the schema, for transaction guards. *)

(** {1 Canonical queries}

    Each returns a well-typed expression over the generated schema. *)

val revenue_per_country : Expr.t
(** 3-way join, then Γ by country over qty×price. *)

val order_sizes : Expr.t
(** Γ per order: item count and total quantity. *)

val repeat_products : Expr.t
(** Bag semantics on display: the multiset of products ordered by
    'gold'-segment customers — duplicates are the signal. *)
