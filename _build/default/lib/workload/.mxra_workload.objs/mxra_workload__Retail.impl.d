lib/workload/retail.ml: Aggregate Array Database Domain Expr Fun List Mxra_core Mxra_ext Mxra_relational Pred Relation Rng Scalar Schema Tuple Value Zipf
