lib/workload/synth.ml: Array Domain Float List Mxra_relational Printf Relation Rng Schema Tuple Value Zipf
