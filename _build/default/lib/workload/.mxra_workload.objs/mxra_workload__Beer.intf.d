lib/workload/beer.mli: Database Expr Mxra_core Mxra_relational Rng Schema Statement
