lib/workload/beer.ml: Aggregate Array Database Domain Expr List Mxra_core Mxra_relational Pred Printf Relation Rng Scalar Schema Statement Tuple Value Zipf
