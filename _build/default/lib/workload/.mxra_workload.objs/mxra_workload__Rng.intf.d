lib/workload/rng.mli:
