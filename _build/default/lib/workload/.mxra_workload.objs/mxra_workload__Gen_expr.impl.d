lib/workload/gen_expr.ml: Aggregate Database Domain Expr List Mxra_core Mxra_relational Pred Printf Relation Rng Scalar Schema Term Tuple Typecheck Value
