lib/workload/retail.mli: Database Expr Mxra_core Mxra_ext Mxra_relational Rng Schema
