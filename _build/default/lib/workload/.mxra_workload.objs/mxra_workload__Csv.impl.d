lib/workload/csv.ml: Buffer Domain Format In_channel List Mxra_relational Out_channel Relation Schema String Tuple Value
