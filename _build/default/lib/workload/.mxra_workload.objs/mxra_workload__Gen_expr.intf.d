lib/workload/gen_expr.mli: Database Domain Expr Mxra_core Mxra_relational Pred Rng Scalar Schema
