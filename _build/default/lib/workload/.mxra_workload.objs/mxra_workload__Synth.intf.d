lib/workload/synth.mli: Mxra_relational Relation Rng Schema
