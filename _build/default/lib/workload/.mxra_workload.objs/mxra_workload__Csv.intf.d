lib/workload/csv.mli: Mxra_relational Relation
