(** Zipf-distributed sampling.

    Skewed attribute-value distributions drive the duplicate factors the
    paper's motivation rests on: a Zipfian column over few distinct
    values produces the heavy duplication that makes duplicate removal
    expensive and bag semantics attractive.

    The sampler draws rank [k ∈ {1..n}] with probability proportional to
    [1/k^s]; [s = 0] is uniform, larger [s] is more skewed. *)

type t

val make : n:int -> s:float -> t
(** Precompute the cumulative distribution for [n] ranks with exponent
    [s >= 0].  @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val sample : t -> Rng.t -> int
(** A rank in [1..n], by binary search over the CDF. *)

val n : t -> int
val s : t -> float
