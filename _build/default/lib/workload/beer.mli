(** The paper's running example: the beer database.

    Section 3's examples are based on "a simple beer database consisting
    of two relations":

    {v
      beer    (name, brewery, alcperc)
      brewery (name, city, country)
    v}

    This module provides those schemas, a small literal instance
    sufficient to reproduce Examples 3.1, 3.2 and 4.1 by hand, a scalable
    random generator for benchmarking, and the paper's example queries as
    algebra expressions. *)

open Mxra_relational
open Mxra_core

val beer_schema : Schema.t
(** [(name:str, brewery:str, alcperc:float)]. *)

val brewery_schema : Schema.t
(** [(name:str, city:str, country:str)]. *)

val tiny : Database.t
(** A hand-written instance with Dutch and foreign breweries, beers with
    duplicate names brewed by several breweries (so Example 3.1 really
    produces duplicates), and the brewery "Guineken" from Example 4.1. *)

val generate :
  rng:Rng.t -> breweries:int -> beers:int -> ?name_skew:float -> unit ->
  Database.t
(** A scaled instance: [breweries] breweries over a fixed country list,
    [beers] beers whose names are drawn Zipf-skewed from a pool smaller
    than [beers] (duplicates guaranteed); [name_skew] defaults to 1.0. *)

(** {1 The paper's example queries} *)

val example_3_1 : Expr.t
(** "The multi-set of all names of beers brewn in the Netherlands":
    [π_{%1}(σ_{%6='NL'}(beer ⋈_{%2=%4} brewery))]. *)

val example_3_2 : Expr.t
(** "The average alcohol percentage of all beers per country":
    [Γ_{(country),AVG,alcperc}(beer ⋈_{%2=%4} brewery)] — the variant
    {e without} the inner projection. *)

val example_3_2_reduced : Expr.t
(** The paper's second formulation with the intermediate projection
    [π_{(alcperc,country)}] inserted to reduce intermediate results;
    under multi-set semantics it is equivalent to {!example_3_2}
    (Example 3.2's point), under set semantics it is not. *)

val example_4_1 : Statement.t
(** Guineken raises the alcohol percentage of its beers by 10%:
    [update(beer, σ_{%2='Guineken'} beer, (%1, %2, %3 * 1.1))]. *)
