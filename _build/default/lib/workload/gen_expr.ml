open Mxra_relational
open Mxra_core

(* Small value pools per domain so that random comparisons and joins hit
   often enough to exercise non-empty intermediate results. *)
let random_value rng = function
  | Domain.DInt -> Value.Int (Rng.int rng 8)
  | Domain.DFloat -> Value.Float (float_of_int (Rng.int rng 8) /. 2.0)
  | Domain.DStr -> Value.Str (Rng.pick rng [ "x"; "y"; "z"; "w" ])
  | Domain.DBool -> Value.Bool (Rng.bool rng)

let random_domain rng =
  Rng.pick rng [ Domain.DInt; Domain.DFloat; Domain.DStr; Domain.DBool ]

let random_schema rng =
  let arity = Rng.int_in rng 1 4 in
  Schema.of_domains (List.init arity (fun _ -> random_domain rng))

let random_relation rng schema max_size =
  let size = Rng.int rng (max_size + 1) in
  let tuple () =
    Tuple.of_list (List.map (random_value rng) (Schema.domains schema))
  in
  Relation.of_list schema (List.init size (fun _ -> tuple ()))

let database ~rng ?(relations = 3) ?(max_size = 24) () =
  let bind i =
    let schema = random_schema rng in
    (Printf.sprintf "r%d" (i + 1), random_relation rng schema max_size)
  in
  Database.of_relations (List.init relations bind)

(* Attribute positions (1-based) of a given domain within a schema. *)
let positions_of schema domain =
  List.mapi (fun i (a : Schema.attribute) -> (i + 1, a.domain))
    (Schema.attributes schema)
  |> List.filter_map (fun (i, d) ->
         if Domain.equal d domain then Some i else None)

let rec scalar_for ~rng schema domain =
  let leaf () =
    match positions_of schema domain with
    | [] -> Scalar.Lit (random_value rng domain)
    | positions ->
        if Rng.int rng 4 = 0 then Scalar.Lit (random_value rng domain)
        else Scalar.attr (Rng.pick rng positions)
  in
  match domain with
  | (Domain.DInt | Domain.DFloat) when Rng.int rng 3 = 0 ->
      (* Division and modulo are excluded: see the interface note. *)
      let op = Rng.pick rng [ Term.Add; Term.Sub; Term.Mul ] in
      Scalar.Binop
        (op, scalar_for ~rng schema domain, scalar_for ~rng schema domain)
  | Domain.DInt | Domain.DFloat | Domain.DStr | Domain.DBool ->
      if Rng.int rng 8 = 0 then
        Scalar.If
          (pred_for ~rng schema, scalar_for ~rng schema domain,
           scalar_for ~rng schema domain)
      else leaf ()

and pred_for ~rng schema =
  let comparison () =
    let domain = random_domain rng in
    let op =
      match domain with
      | Domain.DBool -> Rng.pick rng [ Term.Eq; Term.Ne ]
      | Domain.DInt | Domain.DFloat | Domain.DStr ->
          Rng.pick rng [ Term.Eq; Term.Ne; Term.Lt; Term.Le; Term.Gt; Term.Ge ]
    in
    Pred.Cmp (op, scalar_for ~rng schema domain, scalar_for ~rng schema domain)
  in
  match Rng.int rng 10 with
  | 0 -> Pred.And (comparison (), comparison ())
  | 1 -> Pred.Or (comparison (), comparison ())
  | 2 -> Pred.Not (comparison ())
  | _ -> comparison ()

(* Generation is directed: [gen] may fix the result domains so that the
   union-compatible operators can build both operands. *)
let rec gen ~rng db ~depth ~target =
  if depth <= 0 then leaf ~rng db ~target
  else
    match target with
    | None -> gen_free ~rng db ~depth
    | Some domains -> gen_targeted ~rng db ~depth domains

and leaf ~rng db ~target =
  match target with
  | None -> (
      let names = Database.relation_names db in
      match names with
      | [] -> Expr.const (random_relation rng (random_schema rng) 8)
      | _ -> Expr.rel (Rng.pick rng names))
  | Some domains -> (
      let matching =
        List.filter
          (fun name ->
            List.equal Domain.equal
              (Schema.domains (Database.schema_of name db))
              domains)
          (Database.relation_names db)
      in
      match matching with
      | name :: _ when Rng.bool rng -> Expr.rel name
      | _ ->
          Expr.const
            (random_relation rng (Schema.of_domains domains) 8))

and gen_free ~rng db ~depth =
  let sub ?target () = gen ~rng db ~depth:(depth - 1) ~target in
  let schema_of e = Typecheck.infer_db db e in
  match Rng.int rng 11 with
  | 0 -> leaf ~rng db ~target:None
  | 1 ->
      let e = sub () in
      Expr.select (pred_for ~rng (schema_of e)) e
  | 2 ->
      let e = sub () in
      let schema = schema_of e in
      let width = Rng.int_in rng 1 (Schema.arity schema) in
      let exprs =
        List.init width (fun _ ->
            scalar_for ~rng schema (random_domain rng))
      in
      Expr.project exprs e
  | 3 ->
      let e1 = sub () in
      let domains = Schema.domains (schema_of e1) in
      Expr.union e1 (sub ~target:domains ())
  | 4 ->
      let e1 = sub () in
      let domains = Schema.domains (schema_of e1) in
      Expr.diff e1 (sub ~target:domains ())
  | 5 ->
      let e1 = sub () in
      let domains = Schema.domains (schema_of e1) in
      Expr.intersect e1 (sub ~target:domains ())
  | 6 ->
      let e1 = sub () and e2 = sub () in
      Expr.product e1 e2
  | 7 ->
      let e1 = sub () and e2 = sub () in
      let combined = Schema.concat (schema_of e1) (schema_of e2) in
      Expr.join (pred_for ~rng combined) e1 e2
  | 8 -> Expr.unique (sub ())
  | _ ->
      let e = sub () in
      let schema = schema_of e in
      let arity = Schema.arity schema in
      let attrs =
        List.filter (fun _ -> Rng.int rng 3 = 0) (List.init arity (fun i -> i + 1))
      in
      let agg_of p =
        let domain = Schema.domain schema p in
        let applicable =
          List.filter
            (fun kind -> Aggregate.applicable kind domain)
            (* With an empty grouping list the group can be empty, so
               partial aggregates are kept out of that case. *)
            (if attrs = [] then [ Aggregate.Cnt; Aggregate.Sum ]
             else Aggregate.all_extended)
        in
        match applicable with
        | [] -> (Aggregate.Cnt, p)
        | kinds -> (Rng.pick rng kinds, p)
      in
      let n_aggs = Rng.int_in rng 1 2 in
      let aggs = List.init n_aggs (fun _ -> agg_of (Rng.int_in rng 1 arity)) in
      Expr.group_by attrs aggs e

and gen_targeted ~rng db ~depth domains =
  let sub ?target () = gen ~rng db ~depth:(depth - 1) ~target in
  match Rng.int rng 6 with
  | 0 -> leaf ~rng db ~target:(Some domains)
  | 1 ->
      let e = sub ~target:domains () in
      Expr.select (pred_for ~rng (Typecheck.infer_db db e)) e
  | 2 -> Expr.union (sub ~target:domains ()) (sub ~target:domains ())
  | 3 -> Expr.diff (sub ~target:domains ()) (sub ~target:domains ())
  | 4 -> Expr.intersect (sub ~target:domains ()) (sub ~target:domains ())
  | _ ->
      (* Projection onto the target domains from an arbitrary operand. *)
      let e = sub () in
      let schema = Typecheck.infer_db db e in
      let exprs = List.map (scalar_for ~rng schema) domains in
      Expr.project exprs e

let expr ~rng db ~depth = gen ~rng db ~depth ~target:None

let expr_of_schema ~rng db ~depth schema =
  gen ~rng db ~depth ~target:(Some (Schema.domains schema))

type scenario = {
  db : Database.t;
  expr : Expr.t;
}

let scenario ~seed ~depth =
  let rng = Rng.make seed in
  let db = database ~rng () in
  { db; expr = expr ~rng db ~depth }
