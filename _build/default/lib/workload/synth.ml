open Mxra_relational

let word_pool = [| "alpha"; "bravo"; "carol"; "delta"; "echo"; "fox";
                   "golf"; "hotel"; "india"; "julie"; "kilo"; "lima" |]

let relation ~rng ~schema ~size ?(dup_factor = 1) ?(skew = 0.0) () =
  if size < 0 then invalid_arg "Synth.relation: negative size";
  if dup_factor <= 0 then invalid_arg "Synth.relation: dup_factor <= 0";
  let arity = Schema.arity schema in
  (* Per-column pool size chosen so the product of pools approximates
     the wanted number of distinct tuples. *)
  let distinct_target = max 1 (size / dup_factor) in
  let per_column =
    max 2
      (int_of_float
         (Float.round
            (Float.pow (float_of_int distinct_target)
               (1.0 /. float_of_int (max 1 arity)))))
  in
  let zipf = Zipf.make ~n:per_column ~s:skew in
  let draw domain =
    let k = Zipf.sample zipf rng - 1 in
    match domain with
    | Domain.DInt -> Value.Int k
    | Domain.DFloat -> Value.Float (float_of_int k /. 2.0)
    | Domain.DStr ->
        Value.Str
          (Printf.sprintf "%s%d" word_pool.(k mod Array.length word_pool) k)
    | Domain.DBool -> Value.Bool (k mod 2 = 0)
  in
  let tuple () = Tuple.of_list (List.map draw (Schema.domains schema)) in
  Relation.of_list schema (List.init size (fun _ -> tuple ()))

let int_pair_schema = Schema.of_list [ ("a", Domain.DInt); ("b", Domain.DInt) ]

let two_column_int ~rng ~size ~distinct =
  if distinct <= 0 then invalid_arg "Synth.two_column_int: distinct <= 0";
  let tuple () =
    Tuple.of_list
      [ Value.Int (Rng.int rng distinct); Value.Int (Rng.int rng distinct) ]
  in
  Relation.of_list int_pair_schema (List.init size (fun _ -> tuple ()))

let kv_schema = Schema.of_list [ ("k", Domain.DInt); ("v", Domain.DInt) ]

let join_pair ~rng ~left ~right ~key_range =
  if key_range <= 0 then invalid_arg "Synth.join_pair: key_range <= 0";
  let side size =
    Relation.of_list kv_schema
      (List.init size (fun i ->
           Tuple.of_list
             [ Value.Int (Rng.int rng key_range); Value.Int i ]))
  in
  (side left, side right)

let edge_schema = Schema.of_list [ ("src", Domain.DInt); ("dst", Domain.DInt) ]

let chain_relation ~rng ~nodes ~extra_edges =
  if nodes < 2 then invalid_arg "Synth.chain_relation: nodes < 2";
  let chain =
    List.init (nodes - 1) (fun i ->
        Tuple.of_list [ Value.Int i; Value.Int (i + 1) ])
  in
  let extras =
    List.init extra_edges (fun _ ->
        let src = Rng.int rng (nodes - 1) in
        let dst = Rng.int_in rng (src + 1) (nodes - 1) in
        Tuple.of_list [ Value.Int src; Value.Int dst ])
  in
  Relation.of_list edge_schema (chain @ extras)
