(** Local rewrite rules for the optimizer.

    Every rule is an equivalence of Section 3.3's kind — the paper's
    theorems plus classical bag-valid laws (each verified by the property
    suite in [test/test_optimizer.ml]).  {!normalize} drives them
    bottom-up to a fixpoint, producing the canonical shape the planner
    and join-ordering phase expect:

    - conditions simplified, selections merged then {e pushed} as deep
      as their footprint allows (through [⊎ − ∩ × ⋈ π δ Γ]);
    - selections remaining above products fused into joins
      (Theorem 3.1 right-to-left);
    - cascaded projections composed;
    - narrowing projections inserted under joins and products
      (Example 3.2's "reduce the size of intermediate results"), once;
    - operations on provably empty operands collapsed.

    All rules need only the schema environment, not data. *)

open Mxra_core

val normalize : Typecheck.env -> Expr.t -> Expr.t
(** Fixpoint of the full rule set.  Semantics-preserving. *)

val push_selections : Typecheck.env -> Expr.t -> Expr.t
(** Only the selection rules — exposed for ablation benchmarks. *)

val insert_projections : Typecheck.env -> Expr.t -> Expr.t
(** Only the projection-narrowing rule — exposed for ablation (E5). *)

val subst_pred : Scalar.t array -> Pred.t -> Pred.t
(** [subst_pred exprs p] replaces every [%i] in [p] by [exprs.(i-1)] —
    the substitution that commutes a selection with an (extended)
    projection.  Exposed for tests. *)
