lib/optimizer/optimizer.mli: Database Expr Mxra_core Mxra_engine Mxra_relational Stats Typecheck
