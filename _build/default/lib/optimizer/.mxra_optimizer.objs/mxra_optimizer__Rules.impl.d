lib/optimizer/rules.ml: Array Expr Int List Mxra_core Mxra_relational Pred Relation Scalar Schema Typecheck
