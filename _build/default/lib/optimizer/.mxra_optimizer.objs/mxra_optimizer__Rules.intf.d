lib/optimizer/rules.mli: Expr Mxra_core Pred Scalar Typecheck
