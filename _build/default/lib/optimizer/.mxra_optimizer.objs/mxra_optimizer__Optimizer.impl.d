lib/optimizer/optimizer.ml: Cost Expr List Mxra_core Mxra_engine Mxra_relational Pred Rules Stats Typecheck
