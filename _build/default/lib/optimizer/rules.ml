open Mxra_relational
open Mxra_core

let arity env e = Schema.arity (Typecheck.infer env e)
let schema env e = Typecheck.infer env e

(* Substitute attribute references through a projection list. *)
let rec subst_scalar exprs = function
  | Scalar.Attr i ->
      if i < 1 || i > Array.length exprs then
        invalid_arg "Rules.subst_scalar: index escapes projection"
      else exprs.(i - 1)
  | Scalar.Lit v -> Scalar.Lit v
  | Scalar.Binop (op, a, b) ->
      Scalar.Binop (op, subst_scalar exprs a, subst_scalar exprs b)
  | Scalar.Neg a -> Scalar.Neg (subst_scalar exprs a)
  | Scalar.If (c, a, b) ->
      Scalar.If (subst_pred exprs c, subst_scalar exprs a, subst_scalar exprs b)

and subst_pred exprs = function
  | Pred.True -> Pred.True
  | Pred.False -> Pred.False
  | Pred.Cmp (op, a, b) ->
      Pred.Cmp (op, subst_scalar exprs a, subst_scalar exprs b)
  | Pred.And (p, q) -> Pred.And (subst_pred exprs p, subst_pred exprs q)
  | Pred.Or (p, q) -> Pred.Or (subst_pred exprs p, subst_pred exprs q)
  | Pred.Not p -> Pred.Not (subst_pred exprs p)

let empty_of env e = Expr.Const (Relation.empty (schema env e))

let is_empty_const = function
  | Expr.Const r -> Relation.is_empty r
  | Expr.Rel _ | Expr.Union _ | Expr.Diff _ | Expr.Product _ | Expr.Select _
  | Expr.Project _ | Expr.Intersect _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      false

(* --- selection pushdown ------------------------------------------------ *)

(* Split the conjuncts of [p] over a two-operand node with left arity
   [a1] and total arity [a]: (left-only, right-only shifted, straddling). *)
let split_conjuncts ~a1 p =
  let classify (ls, rs, bs) c =
    let used = Pred.attrs_used c in
    if List.for_all (fun i -> i <= a1) used then (c :: ls, rs, bs)
    else if List.for_all (fun i -> i > a1) used then
      (ls, Pred.shift (-a1) c :: rs, bs)
    else (ls, rs, c :: bs)
  in
  let ls, rs, bs = List.fold_left classify ([], [], []) (Pred.conjuncts p) in
  (List.rev ls, List.rev rs, List.rev bs)

let select_if p e = if Pred.equal p Pred.True then e else Expr.Select (p, e)

(* One top-level selection step; returns None when nothing applies. *)
let select_step env p e0 =
  match e0 with
  | Expr.Select (q, e) -> Some (Expr.Select (Pred.And (p, q), e))
  | Expr.Union (e1, e2) ->
      Some (Expr.Union (Expr.Select (p, e1), Expr.Select (p, e2)))
  | Expr.Diff (e1, e2) ->
      Some (Expr.Diff (Expr.Select (p, e1), Expr.Select (p, e2)))
  | Expr.Intersect (e1, e2) ->
      Some (Expr.Intersect (Expr.Select (p, e1), Expr.Select (p, e2)))
  | Expr.Product (e1, e2) -> (
      let a1 = arity env e1 in
      let ls, rs, bs = split_conjuncts ~a1 p in
      match (ls, rs, bs) with
      | [], [], _ ->
          (* Nothing pushes; fuse into a join if any conjunct straddles. *)
          if bs = [] then None else Some (Expr.Join (p, e1, e2))
      | _, _, _ ->
          let e1' = select_if (Pred.simplify (Pred.conj ls)) e1 in
          let e2' = select_if (Pred.simplify (Pred.conj rs)) e2 in
          let remaining = Pred.simplify (Pred.conj bs) in
          Some
            (if Pred.equal remaining Pred.True then Expr.Product (e1', e2')
             else Expr.Join (remaining, e1', e2')))
  | Expr.Join (q, e1, e2) -> (
      let a1 = arity env e1 in
      let ls, rs, bs = split_conjuncts ~a1 p in
      match (ls, rs) with
      | [], [] -> Some (Expr.Join (Pred.And (q, p), e1, e2))
      | _, _ ->
          let e1' = select_if (Pred.simplify (Pred.conj ls)) e1 in
          let e2' = select_if (Pred.simplify (Pred.conj rs)) e2 in
          let q' = Pred.simplify (Pred.conj (Pred.conjuncts q @ bs)) in
          Some (Expr.Join (q', e1', e2')))
  | Expr.Project (exprs, e) ->
      (* σ_p ∘ π_α = π_α ∘ σ_{p[α]} — valid for extended projections. *)
      Some (Expr.Project (exprs, Expr.Select (subst_pred (Array.of_list exprs) p, e)))
  | Expr.Unique e -> Some (Expr.Unique (Expr.Select (p, e)))
  | Expr.GroupBy (attrs, aggs, e) ->
      (* Conjuncts touching only grouping attributes select whole groups
         and commute below Γ after reindexing %k -> attrs.(k-1). *)
      let k = List.length attrs in
      let keys = Array.of_list (List.map Scalar.attr attrs) in
      let pushable, stuck =
        List.partition
          (fun c -> List.for_all (fun i -> i <= k) (Pred.attrs_used c))
          (Pred.conjuncts p)
      in
      if pushable = [] then None
      else
        let below =
          List.map (fun c -> subst_pred keys c) pushable
          |> Pred.conj |> Pred.simplify
        in
        let inner = Expr.GroupBy (attrs, aggs, select_if below e) in
        Some (select_if (Pred.simplify (Pred.conj stuck)) inner)
  | Expr.Rel _ | Expr.Const _ -> None

(* --- projection composition -------------------------------------------- *)

let project_step exprs e0 =
  match e0 with
  | Expr.Project (inner, e) ->
      (* π_α ∘ π_β = π_{α[β]} *)
      let inner_arr = Array.of_list inner in
      Some (Expr.Project (List.map (subst_scalar inner_arr) exprs, e))
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Intersect _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

(* --- duplicate-elimination pushdown -------------------------------------- *)

(* δ distributes over ×, ⋈ and ∩ (bag-valid; see Equiv); it does NOT
   distribute over ⊎ or −, where the paper's relation
   δ(E1⊎E2) = δ(δE1⊎δE2) still lets the inner operands shrink under an
   outer δ. *)
let unique_step e0 =
  match e0 with
  | Expr.Unique (Expr.Unique e) -> Some (Expr.Unique e)
  (* δ(σE) → σ(δE) is also valid but is the exact inverse of the
     selection rule σ(δE) → δ(σE); only the latter runs, keeping the
     fixpoint terminating and selections deep. *)
  | Expr.Unique (Expr.Product (e1, e2)) ->
      Some (Expr.Product (Expr.Unique e1, Expr.Unique e2))
  | Expr.Unique (Expr.Join (p, e1, e2)) ->
      Some (Expr.Join (p, Expr.Unique e1, Expr.Unique e2))
  | Expr.Unique (Expr.Intersect (e1, e2)) ->
      Some (Expr.Intersect (Expr.Unique e1, Expr.Unique e2))
  (* δ(E1⊎E2) → δ(δE1⊎δE2) is valid (the paper's relation) but cannot
     join a fixpoint: once the inner δs push further down, the union's
     children stop being δ-headed and the rule would fire forever.  It
     lives in Equiv for single-shot use. *)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

(* --- emptiness collapse ------------------------------------------------- *)

let empty_step env e0 =
  match e0 with
  | Expr.Union (e1, e2) when is_empty_const e1 -> Some e2
  | Expr.Union (e1, e2) when is_empty_const e2 -> Some e1
  | Expr.Diff (e1, _) when is_empty_const e1 -> Some (empty_of env e0)
  | Expr.Diff (e1, e2) when is_empty_const e2 -> Some e1
  | Expr.Intersect (e1, e2) when is_empty_const e1 || is_empty_const e2 ->
      Some (empty_of env e0)
  | Expr.Product (e1, e2) when is_empty_const e1 || is_empty_const e2 ->
      Some (empty_of env e0)
  | Expr.Join (_, e1, e2) when is_empty_const e1 || is_empty_const e2 ->
      Some (empty_of env e0)
  | Expr.Select (Pred.False, _) -> Some (empty_of env e0)
  | Expr.Select (Pred.True, e) -> Some e
  | Expr.Select (_, e) when is_empty_const e -> Some (empty_of env e0)
  | Expr.Project (_, e) when is_empty_const e -> Some (empty_of env e0)
  | Expr.Unique (Expr.Unique e) -> Some (Expr.Unique e)
  | Expr.Unique e when is_empty_const e -> Some (empty_of env e0)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Join _
  | Expr.Unique _ | Expr.GroupBy _ ->
      None

(* --- generic bottom-up fixpoint driver ---------------------------------- *)

let rec rewrite_bottom_up step env e =
  let e = Expr.map_children (rewrite_bottom_up step env) e in
  let e =
    match e with
    | Expr.Select (p, inner) -> Expr.Select (Pred.simplify p, inner)
    | Expr.Join (p, l, r) -> Expr.Join (Pred.simplify p, l, r)
    | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
    | Expr.Project _ | Expr.Intersect _ | Expr.Unique _ | Expr.GroupBy _ ->
        e
  in
  match step env e with
  | Some e' -> rewrite_bottom_up step env e'
  | None -> e

let selection_rules env e0 =
  match e0 with
  | Expr.Select (p, e) -> select_step env p e
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Project _ | Expr.Intersect _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let projection_rules _env e0 =
  match e0 with
  | Expr.Project (exprs, e) -> project_step exprs e
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Intersect _ | Expr.Join _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let combined env e0 =
  match empty_step env e0 with
  | Some e -> Some e
  | None -> (
      match selection_rules env e0 with
      | Some e -> Some e
      | None -> (
          match projection_rules env e0 with
          | Some e -> Some e
          | None -> unique_step e0))

let push_selections env e = rewrite_bottom_up selection_rules env e

(* --- projection narrowing under joins (Example 3.2) --------------------- *)

(* Narrow a join/product to the columns the parent needs: project each
   operand down to its used columns and return the narrowed join plus
   the original→narrowed index map the parent must rewrite itself with.
   The inserted projections are exact-width, so a second pass finds
   nothing new (idempotent by construction). *)
let narrow env ~needed e =
  match e with
  | Expr.Join (p, e1, e2) | Expr.Select (p, Expr.Product (e1, e2)) ->
      let a1 = arity env e1 and a2 = arity env e2 in
      let used =
        List.sort_uniq Int.compare (needed @ Pred.attrs_used p)
      in
      let left_used = List.filter (fun i -> i <= a1) used in
      let right_used =
        List.filter_map (fun i -> if i > a1 then Some (i - a1) else None) used
      in
      if
        List.length left_used = a1 && List.length right_used = a2
        || left_used = [] || right_used = []
      then None
      else
        let pos_left = Array.of_list left_used in
        let pos_right = Array.of_list right_used in
        let find arr x =
          let rec go i = if arr.(i) = x then i + 1 else go (i + 1) in
          go 0
        in
        let remap i =
          if i <= a1 then find pos_left i
          else Array.length pos_left + find pos_right (i - a1)
        in
        let narrowed =
          Expr.Join
            ( Pred.rename remap p,
              Expr.project_attrs left_used e1,
              Expr.project_attrs right_used e2 )
        in
        Some (remap, narrowed)
  | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _ | Expr.Product _
  | Expr.Select _ | Expr.Project _ | Expr.Intersect _ | Expr.Unique _
  | Expr.GroupBy _ ->
      None

let insert_projections env e =
  let rec go e =
    let e = Expr.map_children go e in
    match e with
    | Expr.Project (exprs, child) -> (
        let needed =
          List.sort_uniq Int.compare
            (List.concat_map Scalar.attrs_used exprs)
        in
        match narrow env ~needed child with
        | Some (remap, narrowed) ->
            Expr.Project (List.map (Scalar.rename remap) exprs, narrowed)
        | None -> e)
    | Expr.GroupBy (attrs, aggs, child) -> (
        let needed =
          List.sort_uniq Int.compare (attrs @ List.map snd aggs)
        in
        match narrow env ~needed child with
        | Some (remap, narrowed) ->
            Expr.GroupBy
              ( List.map remap attrs,
                List.map (fun (kind, p) -> (kind, remap p)) aggs,
                narrowed )
        | None -> e)
    | Expr.Rel _ | Expr.Const _ | Expr.Union _ | Expr.Diff _
    | Expr.Product _ | Expr.Select _ | Expr.Intersect _ | Expr.Join _
    | Expr.Unique _ ->
        e
  in
  go e

let normalize env e =
  let pushed = rewrite_bottom_up combined env e in
  let narrowed = insert_projections env pushed in
  rewrite_bottom_up combined env narrowed
