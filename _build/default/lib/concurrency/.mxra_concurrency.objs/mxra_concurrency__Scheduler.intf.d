lib/concurrency/scheduler.mli: Database Mxra_core Mxra_relational Transaction
