lib/concurrency/scheduler.ml: Aggregate Array Database Expr Fun List Map Mxra_core Mxra_relational Mxra_workload Relation Scalar Statement String Transaction Typecheck
