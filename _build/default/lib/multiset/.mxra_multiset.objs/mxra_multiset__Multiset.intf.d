lib/multiset/multiset.mli: Format Seq
