lib/multiset/multiset.ml: Format Int List Map Option Printf Seq
