(** Hand-written lexer for the XRA concrete syntax.

    Comments run from [--] to end of line, as in SQL.  String literals
    are single-quoted with [''] escaping a quote.  [%] followed by digits
    is an attribute reference; a bare [%] is the modulo operator.
    Identifiers are [[A-Za-z_][A-Za-z0-9_]*] and case-sensitive (keywords
    are recognised by the parser, not the lexer). *)

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> (Token.t * int) array
(** Tokens with their starting offsets, terminated by [EOF].
    @raise Lex_error on an illegal character or unterminated string. *)
