lib/xra/parser.ml: Aggregate Array Domain Expr Format Lexer List Mxra_core Mxra_relational Pred Program Relation Scalar Schema Statement Term Token Tuple Value
