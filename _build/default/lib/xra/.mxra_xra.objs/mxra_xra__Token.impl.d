lib/xra/token.ml: Printf
