lib/xra/lexer.mli: Token
