lib/xra/printer.mli: Expr Format Mxra_core Mxra_relational Program Relation Statement
