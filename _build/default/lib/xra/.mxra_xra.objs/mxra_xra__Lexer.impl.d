lib/xra/lexer.ml: Array Buffer List Printf String Token
