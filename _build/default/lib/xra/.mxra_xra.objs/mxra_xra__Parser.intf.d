lib/xra/parser.mli: Expr Mxra_core Mxra_relational Program Schema Statement
