lib/xra/printer.ml: Aggregate Domain Expr Format Mxra_core Mxra_relational Pred Relation Scalar Schema Statement Tuple Value
