(* Token alphabet of the XRA concrete syntax.  One flat variant; the
   lexer produces an array of these plus source offsets for errors. *)

type t =
  | INT of int
  | FLOAT of float
  | STRING of string  (* '...' with '' escaping, already unescaped *)
  | IDENT of string
  | ATTR of int  (* %N *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | QUESTION
  | ASSIGN  (* := *)
  | EQ
  | NE  (* <> *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT  (* mod: bare % not followed by a digit *)
  | CONCAT  (* ++ *)
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "'%s'" s
  | IDENT s -> s
  | ATTR n -> Printf.sprintf "%%%d" n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | QUESTION -> "?"
  | ASSIGN -> ":="
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CONCAT -> "++"
  | EOF -> "<eof>"
