open Mxra_relational

type direction =
  | Asc
  | Desc

type sort_key = int * direction

let compare_by keys t1 t2 =
  let rec go = function
    | [] -> 0
    | (attr, dir) :: rest ->
        let c = Value.compare_same_domain (Tuple.attr t1 attr) (Tuple.attr t2 attr) in
        let c = match dir with Asc -> c | Desc -> -c in
        if c <> 0 then c else go rest
  in
  go keys

let sort keys r =
  (* Validate eagerly so errors do not depend on data order. *)
  let arity = Schema.arity (Relation.schema r) in
  List.iter
    (fun (attr, _) ->
      if attr < 1 || attr > arity then
        invalid_arg (Printf.sprintf "Ordered.sort: attribute %%%d out of range" attr))
    keys;
  List.stable_sort (compare_by keys) (Relation.to_list r)

let top_k k keys r = List.filteri (fun i _ -> i < k) (sort keys r)

type cursor = {
  rows : Tuple.t array;
  mutable next : int;
}

let open_cursor keys r = { rows = Array.of_list (sort keys r); next = 0 }

let fetch c =
  if c.next >= Array.length c.rows then None
  else begin
    let t = c.rows.(c.next) in
    c.next <- c.next + 1;
    Some t
  end

let fetch_many c k =
  let rec go acc k =
    if k <= 0 then List.rev acc
    else
      match fetch c with
      | None -> List.rev acc
      | Some t -> go (t :: acc) (k - 1)
  in
  go [] k

let rewind c = c.next <- 0
let position c = c.next
