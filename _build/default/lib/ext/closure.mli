(** Transitive closure — the extension named in the paper's conclusions.

    "The addition of a transitive closure operator allowing expressions
    with a recursive nature is discussed in [11]" (Grefen's PhD thesis).
    This module supplies that operator for binary relations whose two
    attributes share a domain.

    Semantics: the result is the {e set-valued} least fixpoint — each
    reachable pair appears with multiplicity 1.  A bag-valued closure
    (counting paths) is not well defined on cyclic inputs (path counts
    diverge), which is precisely why the operator lives outside the core
    algebra as an extension; duplicate elimination at each step is what
    makes the fixpoint exist.

    Two implementations are provided: the textbook naive iteration
    (re-joining the whole closure each round) and semi-naive evaluation
    (joining only the newly discovered pairs) — the ablation pair for
    the closure-scaling experiment (E8). *)

open Mxra_relational

exception Not_binary of string
(** Raised when the input is not a binary relation with equal domains. *)

val closure : Relation.t -> Relation.t
(** Semi-naive transitive closure.  The result contains the input's
    support (every edge is a path) and is duplicate-free. *)

val closure_naive : Relation.t -> Relation.t
(** Same result via naive iteration; the baseline. *)

val closure_expr : Mxra_core.Expr.t -> Mxra_relational.Database.t -> Relation.t
(** Closure of the value of an algebra expression — the composition the
    extended language would provide. *)

val reachable : Relation.t -> Value.t -> Value.t list
(** Nodes reachable from a source (excluding the source unless on a
    cycle), sorted. *)

val iterations : Relation.t -> int
(** Number of semi-naive rounds until the fixpoint — the "depth" of the
    relation; exposed for experiment reporting. *)
