open Mxra_relational
open Mxra_core

type fragments = Relation.t array

let partition ~parts ~key r =
  if parts <= 0 then invalid_arg "Parallel.partition: parts <= 0";
  let schema = Relation.schema r in
  if key < 1 || key > Schema.arity schema then
    invalid_arg "Parallel.partition: key out of range";
  let bags = Array.make parts Relation.Bag.empty in
  Relation.Bag.iter
    (fun t n ->
      let slot = Value.hash (Tuple.attr t key) mod parts in
      bags.(slot) <- Relation.Bag.add ~count:n t bags.(slot))
    (Relation.bag r);
  Array.map (Relation.of_bag_unchecked schema) bags

let partition_round_robin ~parts r =
  if parts <= 0 then invalid_arg "Parallel.partition_round_robin: parts <= 0";
  let schema = Relation.schema r in
  let bags = Array.make parts Relation.Bag.empty in
  let slot = ref 0 in
  Relation.Bag.iter
    (fun t n ->
      bags.(!slot) <- Relation.Bag.add ~count:n t bags.(!slot);
      slot := (!slot + 1) mod parts)
    (Relation.bag r);
  Array.map (Relation.of_bag_unchecked schema) bags

let merge fragments =
  match Array.to_list fragments with
  | [] -> invalid_arg "Parallel.merge: no fragments"
  | first :: rest -> List.fold_left Eval.union first rest

type 'a report = {
  result : 'a;
  fragment_work : int array;
  speedup : float;
}

let speedup_of work =
  let total = Array.fold_left ( + ) 0 work in
  let busiest = Array.fold_left max 0 work in
  if busiest = 0 then 1.0 else float_of_int total /. float_of_int busiest

let report_of result fragment_work =
  { result; fragment_work; speedup = speedup_of fragment_work }

let par_select ~parts p r =
  let fragments = partition_round_robin ~parts r in
  let work = Array.map Relation.cardinal fragments in
  let selected = Array.map (Eval.select p) fragments in
  report_of (merge selected) work

let par_project ~parts exprs r =
  let fragments = partition_round_robin ~parts r in
  let work = Array.map Relation.cardinal fragments in
  let projected = Array.map (Eval.project exprs) fragments in
  report_of (merge projected) work

(* Per-fragment equi-join, hashed on the key value (the fragments are
   in-memory, so this is the realistic local algorithm). *)
module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let hash_equi_join ~left_key ~right_key left right =
  let out_schema = Schema.concat (Relation.schema left) (Relation.schema right) in
  let table = VH.create 64 in
  Relation.Bag.iter
    (fun t n ->
      let key = Tuple.attr t right_key in
      VH.replace table key ((t, n) :: Option.value ~default:[] (VH.find_opt table key)))
    (Relation.bag right);
  let bag =
    Relation.Bag.fold
      (fun t1 n1 acc ->
        match VH.find_opt table (Tuple.attr t1 left_key) with
        | None -> acc
        | Some matches ->
            List.fold_left
              (fun acc (t2, n2) ->
                Relation.Bag.add ~count:(n1 * n2) (Tuple.concat t1 t2) acc)
              acc matches)
      (Relation.bag left) Relation.Bag.empty
  in
  Relation.of_bag_unchecked out_schema bag

let par_join ~parts ~left_key ~right_key left right =
  let lefts = partition ~parts ~key:left_key left in
  let rights = partition ~parts ~key:right_key right in
  (* A tuple's partition depends only on its key's hash, so matching
     tuples are in same-numbered fragments. *)
  let joined =
    Array.init parts (fun i ->
        hash_equi_join ~left_key ~right_key lefts.(i) rights.(i))
  in
  let work =
    Array.init parts (fun i ->
        Relation.cardinal lefts.(i) + Relation.cardinal rights.(i))
  in
  report_of (merge joined) work

let par_group_by ~parts ~attrs ~aggs r =
  match attrs with
  | [] ->
      invalid_arg
        "Parallel.par_group_by: global aggregates cannot be key-partitioned"
  | first_key :: _ ->
      let fragments = partition ~parts ~key:first_key r in
      let work = Array.map Relation.cardinal fragments in
      (* Every tuple of a group shares the first grouping attribute, so
         groups are fragment-local and union is the correct merge. *)
      let grouped = Array.map (Eval.group_by attrs aggs) fragments in
      report_of (merge grouped) work
