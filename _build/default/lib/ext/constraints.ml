open Mxra_relational
open Mxra_core

type t =
  | Key of string * int list
  | Unique of string * int list
  | Foreign_key of {
      from_relation : string;
      from_attrs : int list;
      to_relation : string;
      to_attrs : int list;
    }
  | Check of string * Pred.t
  | Cardinality of string * int option * int option

type violation = {
  constraint_ : t;
  detail : string;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let schema_of env name =
  match env name with
  | Some schema -> schema
  | None -> ill_formed "unknown relation %s" name

let check_attrs name schema attrs =
  if attrs = [] then ill_formed "empty attribute list on %s" name;
  List.iter
    (fun i ->
      if i < 1 || i > Schema.arity schema then
        ill_formed "attribute %%%d out of range for %s" i name)
    attrs;
  if List.length (List.sort_uniq Int.compare attrs) <> List.length attrs then
    ill_formed "repeated attribute in constraint on %s" name

let validate env = function
  | Key (name, attrs) | Unique (name, attrs) ->
      check_attrs name (schema_of env name) attrs
  | Foreign_key { from_relation; from_attrs; to_relation; to_attrs } ->
      let from_schema = schema_of env from_relation in
      let to_schema = schema_of env to_relation in
      check_attrs from_relation from_schema from_attrs;
      check_attrs to_relation to_schema to_attrs;
      if List.length from_attrs <> List.length to_attrs then
        ill_formed "foreign key %s -> %s: attribute counts differ"
          from_relation to_relation;
      List.iter2
        (fun i j ->
          if
            not
              (Domain.equal (Schema.domain from_schema i)
                 (Schema.domain to_schema j))
          then
            ill_formed "foreign key %s.%%%d -> %s.%%%d: domains differ"
              from_relation i to_relation j)
        from_attrs to_attrs
  | Check (name, p) -> (
      let schema = schema_of env name in
      try Pred.check schema p
      with Scalar.Eval_error msg -> ill_formed "check on %s: %s" name msg)
  | Cardinality (name, lo, hi) -> (
      ignore (schema_of env name);
      match (lo, hi) with
      | Some l, Some h when l > h ->
          ill_formed "cardinality bounds on %s are empty (%d > %d)" name l h
      | _, _ -> ())

let violation c fmt =
  Format.kasprintf (fun detail -> { constraint_ = c; detail }) fmt

(* Key: no duplicated tuples, and the key projection is duplicate-free
   on the support.  Unique: only the latter. *)
let check_key_like c db name attrs ~forbid_duplicates =
  let r = Database.find name db in
  let dup_violations =
    if not forbid_duplicates then []
    else
      Relation.Bag.fold
        (fun t n acc ->
          if n > 1 then
            violation c "tuple %a occurs %d times in %s" Tuple.pp t n name
            :: acc
          else acc)
        (Relation.bag r) []
  in
  let keys = Relation.Bag.map (Tuple.project attrs) (Relation.bag (
      Relation.of_bag_unchecked (Relation.schema r)
        (Relation.Bag.distinct (Relation.bag r))))
  in
  let key_violations =
    Relation.Bag.fold
      (fun key n acc ->
        if n > 1 then
          violation c "key value %a shared by %d distinct tuples of %s"
            Tuple.pp key n name
          :: acc
        else acc)
      keys []
  in
  dup_violations @ key_violations

let check_foreign_key c db ~from_relation ~from_attrs ~to_relation ~to_attrs =
  let referencing = Database.find from_relation db in
  let referenced = Database.find to_relation db in
  let targets =
    Relation.Bag.fold
      (fun t _ acc -> (Tuple.project to_attrs t, ()) :: acc)
      (Relation.bag referenced) []
  in
  let module TS = Set.Make (struct
    type t = Tuple.t

    let compare = Tuple.compare
  end) in
  let target_set =
    List.fold_left (fun s (t, ()) -> TS.add t s) TS.empty targets
  in
  Relation.Bag.fold
    (fun t _ acc ->
      let source = Tuple.project from_attrs t in
      if TS.mem source target_set then acc
      else
        violation c "%a of %s has no match in %s" Tuple.pp source
          from_relation to_relation
        :: acc)
    (Relation.bag referencing) []

let check db c =
  match c with
  | Key (name, attrs) ->
      check_key_like c db name attrs ~forbid_duplicates:true
  | Unique (name, attrs) ->
      check_key_like c db name attrs ~forbid_duplicates:false
  | Foreign_key { from_relation; from_attrs; to_relation; to_attrs } ->
      check_foreign_key c db ~from_relation ~from_attrs ~to_relation ~to_attrs
  | Check (name, p) ->
      Relation.Bag.fold
        (fun t _ acc ->
          if Pred.eval t p then acc
          else violation c "tuple %a of %s fails %a" Tuple.pp t name Pred.pp p
               :: acc)
        (Relation.bag (Database.find name db))
        []
  | Cardinality (name, lo, hi) -> (
      let card = Relation.cardinal (Database.find name db) in
      let too_low =
        match lo with Some l when card < l -> true | _ -> false
      in
      let too_high =
        match hi with Some h when card > h -> true | _ -> false
      in
      match (too_low, too_high) with
      | false, false -> []
      | _, _ ->
          [ violation c "%s has %d tuples, outside the declared bounds" name
              card ])

let check_all db cs = List.concat_map (check db) cs
let satisfied db cs = check_all db cs = []
let guard cs db = not (satisfied db cs)

let pp_attrs ppf attrs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    (fun ppf i -> Format.fprintf ppf "%%%d" i)
    ppf attrs

let pp ppf = function
  | Key (name, attrs) -> Format.fprintf ppf "key(%s; %a)" name pp_attrs attrs
  | Unique (name, attrs) ->
      Format.fprintf ppf "unique(%s; %a)" name pp_attrs attrs
  | Foreign_key { from_relation; from_attrs; to_relation; to_attrs } ->
      Format.fprintf ppf "fk(%s.%a -> %s.%a)" from_relation pp_attrs
        from_attrs to_relation pp_attrs to_attrs
  | Check (name, p) -> Format.fprintf ppf "check(%s; %a)" name Pred.pp p
  | Cardinality (name, lo, hi) ->
      Format.fprintf ppf "cardinality(%s; %s..%s)" name
        (match lo with Some l -> string_of_int l | None -> "")
        (match hi with Some h -> string_of_int h | None -> "")

let pp_violation ppf v =
  Format.fprintf ppf "%a: %s" pp v.constraint_ v.detail
