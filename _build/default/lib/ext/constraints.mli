(** Integrity constraints — the companion the paper points to.

    Section 2: "integrity constraints are not discussed in this paper,
    although they are sometimes considered part of the relational data
    model [7, 14].  Interested readers are referred to [11]" — Grefen's
    thesis on integrity control in parallel database systems.  This
    module supplies the constraint classes that work studies, adapted to
    multi-set semantics:

    - {e key}: the listed attributes determine the tuple, and no two
      {e distinct} tuples agree on them.  Under bag semantics a key
      constraint also demands multiplicity 1 (a duplicated tuple agrees
      with itself on every attribute);
    - {e unique}: like key but duplicates of the whole tuple count as
      one entity — the listed attributes must be unique across the
      relation's {e support};
    - {e foreign key}: every value combination of the referencing
      attributes appears among the referenced relation's key attributes
      (multiplicities irrelevant: reference is a support-level notion);
    - {e check}: a tuple-level condition every member must satisfy;
    - {e cardinality}: bounds on the bag cardinality of a relation.

    Constraints are checked against database states; the transactional
    integration ({!guard}) turns a constraint set into an [abort_if]
    predicate so that a transaction violating integrity aborts at its
    end bracket — deferred checking, exactly the transaction-level
    integrity control of [11], and the ACID "correctness" property of
    Definition 4.3. *)

open Mxra_relational
open Mxra_core

type t =
  | Key of string * int list  (** Relation, 1-based key attributes. *)
  | Unique of string * int list
  | Foreign_key of {
      from_relation : string;
      from_attrs : int list;
      to_relation : string;
      to_attrs : int list;
    }
  | Check of string * Pred.t  (** Every tuple satisfies the condition. *)
  | Cardinality of string * int option * int option
      (** Inclusive lower/upper bounds on bag cardinality. *)

type violation = {
  constraint_ : t;
  detail : string;
}

exception Ill_formed of string
(** A constraint that does not fit the schema (unknown relation,
    attribute out of range, domain mismatch between FK sides, empty
    attribute list). *)

val validate : Typecheck.env -> t -> unit
(** Check well-formedness against a database schema.
    @raise Ill_formed when not. *)

val check : Database.t -> t -> violation list
(** Violations of one constraint in a state; empty when satisfied. *)

val check_all : Database.t -> t list -> violation list

val satisfied : Database.t -> t list -> bool

val guard : t list -> Database.t -> bool
(** [abort_if] predicate for {!Mxra_core.Transaction.make}: true when
    some constraint is violated (i.e. the transaction must abort). *)

val pp : Format.formatter -> t -> unit
val pp_violation : Format.formatter -> violation -> unit
