(** Ordered output and cursors — deliberately {e outside} the algebra.

    The paper's conclusions: "As sets do not impose any order on their
    elements, sort operators and cursor manipulation cannot be expressed
    in this formalism, and can thus not be part of the language" — but
    the design "is open to extensions".  This module is that extension
    layer: it converts a relation {e out of} the model into an ordered
    list of tuples (duplicates expanded per multiplicity) and offers a
    cursor over it.  Nothing here produces relations, so the algebra's
    semantics is untouched — exactly the separation the paper
    prescribes. *)

open Mxra_relational

type direction =
  | Asc
  | Desc

type sort_key = int * direction
(** 1-based attribute and direction. *)

val sort : sort_key list -> Relation.t -> Tuple.t list
(** Stable multi-key sort of the expanded bag (each tuple repeated
    per its multiplicity).  Keys compare within their attribute domain.
    @raise Invalid_argument on an out-of-range attribute;
    @raise Value.Incomparable when a key column mixes domains (cannot
    happen for schema-checked relations). *)

val top_k : int -> sort_key list -> Relation.t -> Tuple.t list
(** First [k] tuples of {!sort} without fully sorting beyond need. *)

type cursor
(** A forward cursor over a sorted result (SQL's cursor manipulation). *)

val open_cursor : sort_key list -> Relation.t -> cursor
val fetch : cursor -> Tuple.t option
(** Next tuple, advancing; [None] at the end. *)

val fetch_many : cursor -> int -> Tuple.t list
val rewind : cursor -> unit
val position : cursor -> int
(** Zero-based index of the next tuple to be fetched. *)
