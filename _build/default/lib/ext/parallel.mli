(** Simulated PRISMA-style parallel operators.

    The paper's conclusions: "the language has been extended with
    special operators to support parallel data processing" in PRISMA/DB
    (a 100-node main-memory multiprocessor).  That hardware is
    unavailable, so parallelism is {e simulated} by the substitution
    documented in DESIGN.md: relations are hash-partitioned into [p]
    fragments, fragment operations run sequentially while per-fragment
    work is recorded, and merging is bag union.  The algebraic content —
    the partition/merge laws the parallel operators rely on — is real
    and tested:

    - [merge (partition R) = R];
    - [σ_φ] commutes with partitioning on any key;
    - an equi-join distributes over co-partitioning on the join key;
    - [Γ] distributes over partitioning on the grouping attributes.

    The simulated speedup of an operation is [total work / max fragment
    work]: the wall-clock model of a perfectly synchronised shared-
    nothing ring, which is how the experiment (E7) reports scaling and
    skew effects. *)

open Mxra_relational
open Mxra_core

type fragments = Relation.t array
(** Disjoint (as bags: summing) pieces of one relation, same schema. *)

val partition : parts:int -> key:int -> Relation.t -> fragments
(** Hash-partition on the value of attribute [key] (1-based).  All
    copies of a tuple land in one fragment.
    @raise Invalid_argument if [parts <= 0] or [key] out of range. *)

val partition_round_robin : parts:int -> Relation.t -> fragments
(** Distinct-tuple round robin — the load-balanced partitioning that is
    {e not} key-aligned (usable for σ and π but not for joins or Γ). *)

val merge : fragments -> Relation.t
(** Bag union of the fragments.  @raise Invalid_argument on [[||]]. *)

type 'a report = {
  result : 'a;
  fragment_work : int array;  (** Input tuples processed per fragment. *)
  speedup : float;  (** total work / max fragment work; ≥ 1. *)
}

val par_select : parts:int -> Pred.t -> Relation.t -> Relation.t report
(** Partition (round robin), select per fragment, merge. *)

val par_project : parts:int -> Scalar.t list -> Relation.t -> Relation.t report

val par_join :
  parts:int ->
  left_key:int ->
  right_key:int ->
  Relation.t ->
  Relation.t ->
  Relation.t report
(** Co-partition both operands on their join keys and hash-join each
    fragment pair — the parallel equi-join of shared-nothing systems. *)

val par_group_by :
  parts:int ->
  attrs:int list ->
  aggs:(Aggregate.kind * int) list ->
  Relation.t ->
  Relation.t report
(** Partition on the first grouping attribute; groups never span
    fragments, so fragment results merge by union.
    @raise Invalid_argument on an empty [attrs] (a global aggregate
    cannot be key-partitioned; combine per-fragment results with the
    sequential operator instead). *)
