lib/ext/semijoin.ml: Eval Mxra_core Mxra_relational Pred Relation Set Tuple Value
