lib/ext/closure.ml: Domain Format List Map Mxra_core Mxra_relational Relation Schema Set Tuple Value
