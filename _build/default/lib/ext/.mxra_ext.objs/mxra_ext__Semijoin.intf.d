lib/ext/semijoin.mli: Database Expr Mxra_core Mxra_relational Pred Relation
