lib/ext/closure.mli: Mxra_core Mxra_relational Relation Value
