lib/ext/parallel.ml: Array Eval Hashtbl List Mxra_core Mxra_relational Option Relation Schema Tuple Value
