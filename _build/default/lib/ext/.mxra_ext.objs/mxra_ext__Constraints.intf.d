lib/ext/constraints.mli: Database Format Mxra_core Mxra_relational Pred Typecheck
