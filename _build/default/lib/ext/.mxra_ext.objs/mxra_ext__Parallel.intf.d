lib/ext/parallel.mli: Aggregate Mxra_core Mxra_relational Pred Relation Scalar
