lib/ext/ordered.ml: Array List Mxra_relational Printf Relation Schema Tuple Value
