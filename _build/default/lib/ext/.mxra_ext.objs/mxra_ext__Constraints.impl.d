lib/ext/constraints.ml: Database Domain Format Int List Mxra_core Mxra_relational Pred Relation Scalar Schema Set Tuple
