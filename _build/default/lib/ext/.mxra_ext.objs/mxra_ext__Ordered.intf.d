lib/ext/ordered.mli: Mxra_relational Relation Tuple
