open Mxra_relational
open Mxra_core

let matches p t1 right =
  Relation.Bag.exists (fun t2 -> Pred.eval (Tuple.concat t1 t2) p) (Relation.bag right)

let semijoin p r1 r2 =
  Relation.of_bag_unchecked (Relation.schema r1)
    (Relation.Bag.filter (fun t1 -> matches p t1 r2) (Relation.bag r1))

let antijoin p r1 r2 =
  Relation.of_bag_unchecked (Relation.schema r1)
    (Relation.Bag.filter (fun t1 -> not (matches p t1 r2)) (Relation.bag r1))

let semijoin_expr p e1 e2 db = semijoin p (Eval.eval db e1) (Eval.eval db e2)

module VS = Set.Make (Value)

let equi_semijoin ~left_key ~right_key r1 r2 =
  let keys =
    Relation.Bag.fold
      (fun t _ acc -> VS.add (Tuple.attr t right_key) acc)
      (Relation.bag r2) VS.empty
  in
  Relation.of_bag_unchecked (Relation.schema r1)
    (Relation.Bag.filter
       (fun t -> VS.mem (Tuple.attr t left_key) keys)
       (Relation.bag r1))
