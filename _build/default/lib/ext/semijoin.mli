(** Semijoin and antijoin — PRISMA's distributed-processing operators.

    The conclusions note the language "has been extended with special
    operators to support parallel data processing" in PRISMA/DB;
    semijoins are the canonical such operators (they ship only the join
    attributes between sites).  Under multi-set semantics:

    - [E1 ⋉_φ E2] keeps each tuple of [E1] {e with its multiplicity}
      when at least one [E2] tuple matches it under [φ] — unlike
      [π_{E1}(E1 ⋈_φ E2)], whose multiplicities get inflated by the
      number of matches (a classic bag pitfall, exhibited in tests);
    - [E1 ▷_φ E2] (antijoin) keeps the tuples with no match.

    Laws (tested): [⋉] and [▷] partition [E1]
    ([E1 = (E1 ⋉ E2) ⊎ (E1 ▷ E2)]); both are sub-bags of [E1];
    [E1 ▷ E2 = E1 − (E1 ⋉ E2)] (monus is exact because [⋉ ⊑ E1]);
    [δ(E1 ⋉ E2) = δ(π_{E1}(E1 ⋈ E2))]. *)

open Mxra_relational
open Mxra_core

val semijoin : Pred.t -> Relation.t -> Relation.t -> Relation.t
(** [semijoin φ r1 r2]: [φ] is a condition over [schema r1 ⊕ schema r2].
    Result schema is [r1]'s.
    @raise Scalar.Eval_error on an ill-typed condition. *)

val antijoin : Pred.t -> Relation.t -> Relation.t -> Relation.t

val semijoin_expr : Pred.t -> Expr.t -> Expr.t -> Database.t -> Relation.t
(** Evaluate both operands with the reference evaluator, then semijoin. *)

val equi_semijoin :
  left_key:int -> right_key:int -> Relation.t -> Relation.t -> Relation.t
(** Hash-based fast path for the single-attribute equi case — what a
    distributed join would ship. *)
