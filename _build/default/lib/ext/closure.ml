open Mxra_relational

exception Not_binary of string

module Pair = struct
  type t = Value.t * Value.t

  let compare (a1, b1) (a2, b2) =
    let c = Value.compare a1 a2 in
    if c <> 0 then c else Value.compare b1 b2
end

module PairSet = Set.Make (Pair)
module VMap = Map.Make (Value)

let check_binary r =
  let schema = Relation.schema r in
  if Schema.arity schema <> 2 then
    raise
      (Not_binary
         (Format.asprintf "closure needs a binary relation, got %a" Schema.pp
            schema));
  if not (Domain.equal (Schema.domain schema 1) (Schema.domain schema 2)) then
    raise
      (Not_binary
         (Format.asprintf "closure needs equal domains, got %a" Schema.pp
            schema))

let edges_of r =
  Relation.Bag.fold
    (fun t _ acc -> PairSet.add (Tuple.attr t 1, Tuple.attr t 2) acc)
    (Relation.bag r) PairSet.empty

(* Adjacency: source -> successor list. *)
let adjacency pairs =
  PairSet.fold
    (fun (src, dst) acc ->
      VMap.update src
        (function None -> Some [ dst ] | Some ds -> Some (dst :: ds))
        acc)
    pairs VMap.empty

let to_relation schema pairs =
  let bag =
    PairSet.fold
      (fun (a, b) acc -> Relation.Bag.add (Tuple.of_list [ a; b ]) acc)
      pairs Relation.Bag.empty
  in
  Relation.of_bag_unchecked schema bag

(* Semi-naive: each round extends only the frontier (pairs discovered
   last round) by one edge step. *)
let closure_rounds r =
  check_binary r;
  let edges = edges_of r in
  let adj = adjacency edges in
  let rec iterate closed frontier rounds =
    if PairSet.is_empty frontier then (closed, rounds)
    else
      let extended =
        PairSet.fold
          (fun (a, b) acc ->
            match VMap.find_opt b adj with
            | None -> acc
            | Some succs ->
                List.fold_left (fun acc c -> PairSet.add (a, c) acc) acc succs)
          frontier PairSet.empty
      in
      let fresh = PairSet.diff extended closed in
      iterate (PairSet.union closed fresh) fresh (rounds + 1)
  in
  iterate edges edges 0

let closure r =
  let pairs, _ = closure_rounds r in
  to_relation (Relation.schema r) pairs

let iterations r =
  let _, rounds = closure_rounds r in
  rounds

(* Naive: recompute closed ∘ edges every round until nothing is new. *)
let closure_naive r =
  check_binary r;
  let edges = edges_of r in
  let adj = adjacency edges in
  let step closed =
    PairSet.fold
      (fun (a, b) acc ->
        match VMap.find_opt b adj with
        | None -> acc
        | Some succs ->
            List.fold_left (fun acc c -> PairSet.add (a, c) acc) acc succs)
      closed closed
  in
  let rec iterate closed =
    let next = step closed in
    if PairSet.cardinal next = PairSet.cardinal closed then closed
    else iterate next
  in
  to_relation (Relation.schema r) (iterate edges)

let closure_expr e db = closure (Mxra_core.Eval.eval db e)

let reachable r source =
  let pairs, _ = closure_rounds r in
  PairSet.fold
    (fun (a, b) acc -> if Value.equal a source then b :: acc else acc)
    pairs []
  |> List.sort_uniq Value.compare
