open Mxra_core

type t =
  | Const_scan of Mxra_relational.Relation.t
  | Seq_scan of string
  | Filter of Pred.t * t
  | Project_op of Scalar.t list * t
  | Hash_join of {
      left_keys : int list;
      right_keys : int list;
      left_arity : int;
      residual : Pred.t;
      left : t;
      right : t;
    }
  | Merge_join of {
      left_keys : int list;
      right_keys : int list;
      left_arity : int;
      residual : Pred.t;
      left : t;
      right : t;
    }
  | Nested_loop of Pred.t * t * t
  | Cross_product of t * t
  | Union_all of t * t
  | Hash_diff of t * t
  | Hash_intersect of t * t
  | Hash_distinct of t
  | Hash_aggregate of int list * (Aggregate.kind * int) list * t

(* The logical join condition of a hash join: key equalities (right keys
   reindexed past the left arity) conjoined with the residual. *)
let rec to_logical plan =
  match plan with
  | Const_scan r -> Expr.Const r
  | Seq_scan name -> Expr.Rel name
  | Filter (p, t) -> Expr.Select (p, to_logical t)
  | Project_op (exprs, t) -> Expr.Project (exprs, to_logical t)
  | Hash_join { left_keys; right_keys; left_arity; residual; left; right }
  | Merge_join { left_keys; right_keys; left_arity; residual; left; right } ->
      let key_conds =
        List.map2
          (fun i j -> Pred.eq (Scalar.attr i) (Scalar.attr (j + left_arity)))
          left_keys right_keys
      in
      Expr.Join
        (Pred.conj (key_conds @ [ residual ]), to_logical left,
         to_logical right)
  | Nested_loop (p, l, r) -> Expr.Join (p, to_logical l, to_logical r)
  | Cross_product (l, r) -> Expr.Product (to_logical l, to_logical r)
  | Union_all (l, r) -> Expr.Union (to_logical l, to_logical r)
  | Hash_diff (l, r) -> Expr.Diff (to_logical l, to_logical r)
  | Hash_intersect (l, r) -> Expr.Intersect (to_logical l, to_logical r)
  | Hash_distinct t -> Expr.Unique (to_logical t)
  | Hash_aggregate (attrs, aggs, t) ->
      Expr.GroupBy (attrs, aggs, to_logical t)

let rec size = function
  | Const_scan _ | Seq_scan _ -> 1
  | Filter (_, t) | Project_op (_, t) | Hash_distinct t
  | Hash_aggregate (_, _, t) ->
      1 + size t
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      1 + size left + size right
  | Nested_loop (_, l, r)
  | Cross_product (l, r)
  | Union_all (l, r)
  | Hash_diff (l, r)
  | Hash_intersect (l, r) ->
      1 + size l + size r

let pp_keys ppf keys =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    (fun ppf i -> Format.fprintf ppf "%%%d" i)
    ppf keys

let pp ppf plan =
  let rec go indent plan =
    let pad = String.make indent ' ' in
    match plan with
    | Const_scan r ->
        Format.fprintf ppf "%sConstScan (%d tuples)@," pad
          (Mxra_relational.Relation.cardinal r)
    | Seq_scan name -> Format.fprintf ppf "%sSeqScan %s@," pad name
    | Filter (p, t) ->
        Format.fprintf ppf "%sFilter [%a]@," pad Pred.pp p;
        go (indent + 2) t
    | Project_op (exprs, t) ->
        Format.fprintf ppf "%sProject [%a]@," pad
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             Scalar.pp)
          exprs;
        go (indent + 2) t
    | Hash_join { left_keys; right_keys; residual; left; right; _ } ->
        Format.fprintf ppf "%sHashJoin keys=%a=%a residual=[%a]@," pad
          pp_keys left_keys pp_keys right_keys Pred.pp residual;
        go (indent + 2) left;
        go (indent + 2) right
    | Merge_join { left_keys; right_keys; residual; left; right; _ } ->
        Format.fprintf ppf "%sMergeJoin keys=%a=%a residual=[%a]@," pad
          pp_keys left_keys pp_keys right_keys Pred.pp residual;
        go (indent + 2) left;
        go (indent + 2) right
    | Nested_loop (p, l, r) ->
        Format.fprintf ppf "%sNestedLoop [%a]@," pad Pred.pp p;
        go (indent + 2) l;
        go (indent + 2) r
    | Cross_product (l, r) ->
        Format.fprintf ppf "%sCrossProduct@," pad;
        go (indent + 2) l;
        go (indent + 2) r
    | Union_all (l, r) ->
        Format.fprintf ppf "%sUnionAll@," pad;
        go (indent + 2) l;
        go (indent + 2) r
    | Hash_diff (l, r) ->
        Format.fprintf ppf "%sHashDiff@," pad;
        go (indent + 2) l;
        go (indent + 2) r
    | Hash_intersect (l, r) ->
        Format.fprintf ppf "%sHashIntersect@," pad;
        go (indent + 2) l;
        go (indent + 2) r
    | Hash_distinct t ->
        Format.fprintf ppf "%sHashDistinct@," pad;
        go (indent + 2) t
    | Hash_aggregate (attrs, aggs, t) ->
        Format.fprintf ppf "%sHashAggregate keys=[%a] aggs=[%a]@," pad
          pp_keys attrs
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
             (fun ppf (k, p) -> Format.fprintf ppf "%a(%%%d)" Aggregate.pp k p))
          aggs;
        go (indent + 2) t
  in
  Format.fprintf ppf "@[<v>";
  go 0 plan;
  Format.fprintf ppf "@]"

let to_string plan = Format.asprintf "%a" pp plan
