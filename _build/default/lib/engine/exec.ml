open Mxra_relational
open Mxra_core

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* --- incremental aggregate accumulators ------------------------------- *)

type agg_state =
  | S_cnt of int
  | S_sum_int of int
  | S_min of Value.t option
  | S_max of Value.t option
  | S_column of Aggregate.kind * Domain.t * (Value.t * int) list
      (* Buffered fallback delegating to the reference computation, used
         wherever incremental folding could disagree with the formal
         semantics in the last float ulp (AVG, float SUM, VAR, STDDEV);
         Aggregate canonicalises the column order internally, so engine
         and reference agree bit for bit. *)

let initial_state kind domain =
  match (kind, domain) with
  | Aggregate.Cnt, _ -> S_cnt 0
  | Aggregate.Sum, Domain.DFloat -> S_column (kind, domain, [])
  | Aggregate.Sum, (Domain.DInt | Domain.DStr | Domain.DBool) -> S_sum_int 0
  | Aggregate.Avg, _ -> S_column (kind, domain, [])
  | Aggregate.Min, _ -> S_min None
  | Aggregate.Max, _ -> S_max None
  | (Aggregate.Var | Aggregate.Stddev), _ -> S_column (kind, domain, [])

let update_state state v n =
  match state with
  | S_cnt c -> S_cnt (c + n)
  | S_sum_int s -> (
      match v with
      | Value.Int x -> S_sum_int (s + (x * n))
      | Value.Float _ | Value.Str _ | Value.Bool _ ->
          raise (Scalar.Eval_error "SUM over a non-integer value"))
  | S_min best -> (
      match best with
      | None -> S_min (Some v)
      | Some w ->
          S_min (Some (if Value.compare_same_domain v w < 0 then v else w)))
  | S_max best -> (
      match best with
      | None -> S_max (Some v)
      | Some w ->
          S_max (Some (if Value.compare_same_domain v w > 0 then v else w)))
  | S_column (kind, domain, column) -> S_column (kind, domain, (v, n) :: column)

let finalize_state = function
  | S_cnt c -> Value.Int c
  | S_sum_int s -> Value.Int s
  | S_min None -> raise (Aggregate.Undefined Aggregate.Min)
  | S_min (Some v) -> v
  | S_max None -> raise (Aggregate.Undefined Aggregate.Max)
  | S_max (Some v) -> v
  | S_column (kind, domain, column) -> Aggregate.compute_for domain kind column

(* --- plan execution ---------------------------------------------------- *)

(* Collapse a counted stream into a per-tuple count table. *)
let count_table stream =
  let table = TH.create 64 in
  Seq.iter
    (fun (t, n) ->
      match TH.find_opt table t with
      | Some c -> TH.replace table t (c + n)
      | None -> TH.add table t n)
    stream;
  table

(* [tick] is invoked with every counted-tuple element each operator
   emits; summing over operators measures the tuple traffic of the plan,
   and weighting by arity measures the data volume. *)
let rec exec ~tick db plan : (Tuple.t * int) Seq.t =
  let emit s = Seq.map (fun x -> tick x; x) s in
  match plan with
  | Physical.Const_scan r -> emit (Relation.Bag.to_counted_seq (Relation.bag r))
  | Physical.Seq_scan name ->
      emit (Relation.Bag.to_counted_seq (Relation.bag (Database.find name db)))
  | Physical.Filter (p, t) ->
      emit (Seq.filter (fun (tuple, _) -> Pred.eval tuple p) (exec ~tick db t))
  | Physical.Project_op (exprs, t) ->
      let image tuple = Tuple.of_list (List.map (Scalar.eval tuple) exprs) in
      emit (Seq.map (fun (tuple, n) -> (image tuple, n)) (exec ~tick db t))
  | Physical.Hash_join { left_keys; right_keys; residual; left; right; _ } ->
      (* Build on the right, probe (pipelined) from the left. *)
      let table = TH.create 256 in
      Seq.iter
        (fun (tuple, n) ->
          let key = Tuple.project right_keys tuple in
          let existing = Option.value ~default:[] (TH.find_opt table key) in
          TH.replace table key ((tuple, n) :: existing))
        (exec ~tick db right);
      let probe (ltuple, ln) =
        let key = Tuple.project left_keys ltuple in
        match TH.find_opt table key with
        | None -> Seq.empty
        | Some matches ->
            List.to_seq matches
            |> Seq.filter_map (fun (rtuple, rn) ->
                   let combined = Tuple.concat ltuple rtuple in
                   if Pred.eval combined residual then
                     Some (combined, ln * rn)
                   else None)
      in
      emit (Seq.concat_map probe (exec ~tick db left))
  | Physical.Merge_join { left_keys; right_keys; residual; left; right; _ } ->
      (* Sort both inputs by their key projections and merge key groups.
         Both sides materialise; output is emitted lazily per group
         pair. *)
      let keyed keys rows =
        let arr =
          Array.of_seq
            (Seq.map (fun (t, n) -> (Tuple.project keys t, t, n)) rows)
        in
        Array.sort (fun (k1, _, _) (k2, _, _) -> Tuple.compare k1 k2) arr;
        arr
      in
      let ls = keyed left_keys (exec ~tick db left) in
      let rs = keyed right_keys (exec ~tick db right) in
      let group arr i =
        let key, _, _ = arr.(i) in
        let rec last j =
          if j + 1 < Array.length arr
             && Tuple.compare key (let k, _, _ = arr.(j + 1) in k) = 0
          then last (j + 1)
          else j
        in
        (key, last i)
      in
      let rec merge i j () =
        if i >= Array.length ls || j >= Array.length rs then Seq.Nil
        else
          let lk, li = group ls i in
          let rk, rj = group rs j in
          let c = Tuple.compare lk rk in
          if c < 0 then merge (li + 1) j ()
          else if c > 0 then merge i (rj + 1) ()
          else
            let pairs =
              Seq.concat_map
                (fun a ->
                  Seq.filter_map
                    (fun b ->
                      let _, lt, ln = ls.(a) and _, rt, rn = rs.(b) in
                      let combined = Tuple.concat lt rt in
                      if Pred.eval combined residual then
                        Some (combined, ln * rn)
                      else None)
                    (Seq.init (rj - j + 1) (fun k -> j + k)))
                (Seq.init (li - i + 1) (fun k -> i + k))
            in
            Seq.append pairs (merge (li + 1) (rj + 1)) ()
      in
      emit (merge 0 0)
  | Physical.Nested_loop (p, l, r) ->
      let right_rows = List.of_seq (exec ~tick db r) in
      let expand (ltuple, ln) =
        List.to_seq right_rows
        |> Seq.filter_map (fun (rtuple, rn) ->
               let combined = Tuple.concat ltuple rtuple in
               if Pred.eval combined p then Some (combined, ln * rn) else None)
      in
      emit (Seq.concat_map expand (exec ~tick db l))
  | Physical.Cross_product (l, r) ->
      let right_rows = List.of_seq (exec ~tick db r) in
      let expand (ltuple, ln) =
        List.to_seq right_rows
        |> Seq.map (fun (rtuple, rn) -> (Tuple.concat ltuple rtuple, ln * rn))
      in
      emit (Seq.concat_map expand (exec ~tick db l))
  | Physical.Union_all (l, r) ->
      emit (Seq.append (exec ~tick db l) (exec ~tick db r))
  | Physical.Hash_diff (l, r) ->
      let left_counts = count_table (exec ~tick db l) in
      let right_counts = count_table (exec ~tick db r) in
      let monus (t, ln) =
        let rn = Option.value ~default:0 (TH.find_opt right_counts t) in
        if ln > rn then Some (t, ln - rn) else None
      in
      emit (Seq.filter_map monus (TH.to_seq left_counts))
  | Physical.Hash_intersect (l, r) ->
      let left_counts = count_table (exec ~tick db l) in
      let right_counts = count_table (exec ~tick db r) in
      let pointwise_min (t, ln) =
        match TH.find_opt right_counts t with
        | Some rn -> Some (t, min ln rn)
        | None -> None
      in
      emit (Seq.filter_map pointwise_min (TH.to_seq left_counts))
  | Physical.Hash_distinct t ->
      let seen = TH.create 64 in
      Seq.iter
        (fun (tuple, _) -> TH.replace seen tuple ())
        (exec ~tick db t);
      emit (Seq.map (fun (tuple, ()) -> (tuple, 1)) (TH.to_seq seen))
  | Physical.Hash_aggregate (attrs, aggs, t) ->
      exec_aggregate ~tick db attrs aggs t

and exec_aggregate ~tick db attrs aggs t =
  let emit s = Seq.map (fun x -> tick x; x) s in
  let input_schema =
    Typecheck.infer_db db (Physical.to_logical t)
  in
  let fresh_states () =
    Array.of_list
      (List.map
         (fun (kind, p) -> initial_state kind (Schema.domain input_schema p))
         aggs)
  in
  let positions = Array.of_list (List.map snd aggs) in
  let groups = TH.create 64 in
  Seq.iter
    (fun (tuple, n) ->
      let key = Tuple.project attrs tuple in
      let states =
        match TH.find_opt groups key with
        | Some states -> states
        | None ->
            let states = fresh_states () in
            TH.add groups key states;
            states
      in
      Array.iteri
        (fun i state ->
          states.(i) <- update_state state (Tuple.attr tuple positions.(i)) n)
        states)
    (exec ~tick db t);
  (* Definition 3.4: with an empty grouping list the result is one tuple
     even over the empty input. *)
  if attrs = [] && TH.length groups = 0 then
    TH.add groups Tuple.unit (fresh_states ());
  let finalize (key, states) =
    let values = Array.to_list (Array.map finalize_state states) in
    (Tuple.concat key (Tuple.of_list values), 1)
  in
  emit (Seq.map finalize (TH.to_seq groups))

let materialize db plan stream =
  let schema = Typecheck.infer_db db (Physical.to_logical plan) in
  Relation.of_bag_unchecked schema (Relation.Bag.of_counted_seq stream)

let no_tick _ = ()
let run db plan = materialize db plan (exec ~tick:no_tick db plan)
let stream db plan = exec ~tick:no_tick db plan

let tuples_moved db plan =
  let moved = ref 0 in
  let s = exec ~tick:(fun _ -> incr moved) db plan in
  Seq.iter (fun _ -> ()) s;
  !moved

let cells_moved db plan =
  let moved = ref 0 in
  let s = exec ~tick:(fun (t, _) -> moved := !moved + Tuple.arity t) db plan in
  Seq.iter (fun _ -> ()) s;
  !moved

let run_expr db e = run db (Planner.plan db e)
