lib/engine/stats.ml: Array Database Domain Float Format List Map Mxra_relational Printf Relation Schema Set Tuple Value
