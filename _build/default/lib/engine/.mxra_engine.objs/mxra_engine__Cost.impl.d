lib/engine/cost.ml: Array Expr Float List Mxra_core Mxra_relational Option Pred Scalar Schema Stats Term Typecheck Value
