lib/engine/exec.mli: Database Expr Mxra_core Mxra_relational Physical Relation Seq Tuple
