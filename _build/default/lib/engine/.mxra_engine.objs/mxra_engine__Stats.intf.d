lib/engine/stats.mli: Database Format Mxra_relational Relation Value
