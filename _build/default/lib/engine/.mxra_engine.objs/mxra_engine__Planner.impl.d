lib/engine/planner.ml: Expr List Mxra_core Mxra_relational Physical Pred Typecheck
