lib/engine/planner.mli: Database Expr Mxra_core Mxra_relational Physical Pred Typecheck
