lib/engine/cost.mli: Expr Mxra_core Pred Stats Typecheck
