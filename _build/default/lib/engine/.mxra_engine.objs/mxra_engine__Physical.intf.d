lib/engine/physical.mli: Aggregate Expr Format Mxra_core Mxra_relational Pred Relation Scalar
