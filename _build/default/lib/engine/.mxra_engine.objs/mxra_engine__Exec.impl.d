lib/engine/exec.ml: Aggregate Array Database Domain Hashtbl List Mxra_core Mxra_relational Option Physical Planner Pred Relation Scalar Schema Seq Tuple Typecheck Value
