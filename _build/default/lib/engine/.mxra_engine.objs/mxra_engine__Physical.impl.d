lib/engine/physical.ml: Aggregate Expr Format List Mxra_core Mxra_relational Pred Scalar String
