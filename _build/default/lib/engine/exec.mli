(** Physical plan execution.

    Operators exchange {e counted tuples} [(tuple, multiplicity)]: a
    relation holding one tuple a million times flows as a single element,
    which is the executable form of the paper's representation of
    multi-sets as [(x, E(x))] pairs.  Pipelined operators (scan, filter,
    project, the probe side of a hash join) are lazy sequences; blocking
    operators (hash join build, aggregation, distinct, difference,
    intersection) materialise hash tables.

    Correctness contract: for every plan [p] and database [db],
    [run db p] equals [Eval.eval db (Physical.to_logical p)] — checked
    property-style by the test suite. *)

open Mxra_relational
open Mxra_core

val run : Database.t -> Physical.t -> Relation.t
(** Execute a plan to a materialised relation.
    @raise Database.Unknown_relation on a scan of an absent name.
    @raise Typecheck.Type_error if the plan's logical image is ill-typed.
    @raise Scalar.Eval_error / [Aggregate.Undefined] on dynamic failure. *)

val run_expr : Database.t -> Expr.t -> Relation.t
(** Plan (with {!Planner.plan}) and execute a logical expression — the
    engine's one-call entry point. *)

val stream : Database.t -> Physical.t -> (Tuple.t * int) Seq.t
(** The raw counted-tuple stream of a plan, without final
    materialisation; multiplicities of equal tuples may be split across
    several elements. *)

val tuples_moved : Database.t -> Physical.t -> int
(** Execute while counting every counted-tuple element that crosses an
    operator boundary — the measured counterpart of {!Cost.cost}'s
    estimate. *)

val cells_moved : Database.t -> Physical.t -> int
(** Like {!tuples_moved} but weighted by tuple arity: the data {e
    volume} crossing operator boundaries.  This is the quantity
    Example 3.2's early projection reduces — narrower intermediates —
    and what the intermediate-size experiment (E5) reports. *)
